// Tests for circuit construction, waveforms, electrostatics and the parser.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/constants.h"
#include "base/error.h"
#include "netlist/circuit.h"
#include "netlist/electrostatics.h"
#include "netlist/parser.h"
#include "netlist/waveform.h"

namespace semsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The paper's Fig. 1 SET: R1 = R2 = 1 MOhm, C1 = C2 = 1 aF, Cg = 3 aF.
struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture() {
    src = c.add_external("source");
    drn = c.add_external("drain");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(drn, island, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
  }
};

// ---- Waveform ---------------------------------------------------------------

TEST(Waveform, DcConstantNoBreakpoints) {
  const Waveform w = Waveform::dc(0.02);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.02);
  EXPECT_DOUBLE_EQ(w.value(1e9), 0.02);
  EXPECT_EQ(w.next_breakpoint(0.0), kInf);
  EXPECT_TRUE(w.is_dc());
  EXPECT_DOUBLE_EQ(w.max_abs(), 0.02);
}

TEST(Waveform, Step) {
  const Waveform w = Waveform::step(0.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(w.value(4.999), 0.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), 1.0);
  EXPECT_DOUBLE_EQ(w.next_breakpoint(0.0), 5.0);
  EXPECT_EQ(w.next_breakpoint(5.0), kInf);
  EXPECT_DOUBLE_EQ(w.max_abs(), 1.0);
}

TEST(Waveform, PulseTrain) {
  const Waveform w = Waveform::pulse(0.0, 2.0, 1.0, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);   // before delay
  EXPECT_DOUBLE_EQ(w.value(1.2), 2.0);   // inside first pulse
  EXPECT_DOUBLE_EQ(w.value(1.7), 0.0);   // after first pulse
  EXPECT_DOUBLE_EQ(w.value(3.2), 2.0);   // second period
  EXPECT_DOUBLE_EQ(w.next_breakpoint(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.next_breakpoint(1.0), 1.5);
  EXPECT_DOUBLE_EQ(w.next_breakpoint(1.5), 3.0);
}

TEST(Waveform, PulseRejectsBadShape) {
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 2.0, 1.0), Error);
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 0.0, 1.0), Error);
}

TEST(Waveform, Piecewise) {
  const Waveform w = Waveform::piecewise({1.0, 2.0, 4.0}, {0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.1);  // before first point
  EXPECT_DOUBLE_EQ(w.value(1.5), 0.1);
  EXPECT_DOUBLE_EQ(w.value(2.0), 0.2);
  EXPECT_DOUBLE_EQ(w.value(10.0), 0.3);
  EXPECT_DOUBLE_EQ(w.next_breakpoint(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.next_breakpoint(2.0), 4.0);
  EXPECT_EQ(w.next_breakpoint(4.0), kInf);
  EXPECT_DOUBLE_EQ(w.max_abs(), 0.3);
}

TEST(Waveform, PiecewiseRejectsUnsorted) {
  EXPECT_THROW(Waveform::piecewise({2.0, 1.0}, {0.0, 1.0}), Error);
  EXPECT_THROW(Waveform::piecewise({}, {}), Error);
}

TEST(Waveform, SineSampleAndHold) {
  const Waveform w = Waveform::sine(0.5, 1.0, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.5);
  EXPECT_NEAR(w.value(0.25), 0.5 + std::sin(M_PI / 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(w.value(0.3), w.value(0.25));  // held
  EXPECT_DOUBLE_EQ(w.next_breakpoint(0.0), 0.25);
  EXPECT_DOUBLE_EQ(w.max_abs(), 1.5);
}

// ---- Circuit ----------------------------------------------------------------

TEST(Circuit, GroundIsNodeZero) {
  Circuit c;
  EXPECT_EQ(c.node_count(), 1u);
  EXPECT_EQ(c.node(0).kind, NodeKind::kGround);
  EXPECT_DOUBLE_EQ(c.source(Circuit::kGroundNode).value(1.0), 0.0);
}

TEST(Circuit, BuilderAssignsSequentialIds) {
  SetFixture f;
  EXPECT_EQ(f.src, 1);
  EXPECT_EQ(f.island, 4);
  EXPECT_EQ(f.c.junction_count(), 2u);
  EXPECT_EQ(f.c.capacitor_count(), 1u);
  EXPECT_TRUE(f.c.is_island(f.island));
  EXPECT_FALSE(f.c.is_island(f.gate));
}

TEST(Circuit, RejectsBadElements) {
  Circuit c;
  const NodeId a = c.add_external();
  const NodeId i = c.add_island();
  EXPECT_THROW(c.add_junction(a, a, 1e6, 1e-18), CircuitError);
  EXPECT_THROW(c.add_junction(a, i, 0.0, 1e-18), CircuitError);
  EXPECT_THROW(c.add_junction(a, i, 1e6, 0.0), CircuitError);
  EXPECT_THROW(c.add_capacitor(a, i, -1e-18), CircuitError);
  EXPECT_THROW(c.add_junction(a, 99, 1e6, 1e-18), Error);
}

TEST(Circuit, SourceOnlyOnExternals) {
  Circuit c;
  const NodeId i = c.add_island();
  EXPECT_THROW(c.set_source(i, Waveform::dc(1.0)), CircuitError);
  EXPECT_THROW(c.set_background_charge(Circuit::kGroundNode, 0.1), CircuitError);
}

TEST(Circuit, BackgroundChargeOnlyOnIslands) {
  Circuit c;
  const NodeId e = c.add_external();
  EXPECT_THROW(c.set_background_charge(e, 0.65), CircuitError);
  const NodeId i = c.add_island();
  c.set_background_charge(i, 0.65);
  EXPECT_DOUBLE_EQ(c.background_charge_e(i), 0.65);
}

TEST(Circuit, ValidateCatchesDisconnectedIsland) {
  Circuit c;
  c.add_island("floating");
  EXPECT_THROW(c.validate(), CircuitError);
}

TEST(Circuit, AdjacencyLists) {
  SetFixture f;
  const auto& at_island = f.c.junctions_of(f.island);
  EXPECT_EQ(at_island.size(), 2u);
  EXPECT_EQ(f.c.junctions_of(f.gate).size(), 0u);  // gate couples via cap only
  EXPECT_EQ(f.c.junctions_of(f.src).size(), 1u);
}

TEST(Circuit, IslandAndExternalEnumeration) {
  SetFixture f;
  EXPECT_EQ(f.c.islands(), std::vector<NodeId>{f.island});
  EXPECT_EQ(f.c.externals(), (std::vector<NodeId>{f.src, f.drn, f.gate}));
}

TEST(Circuit, SuperconductingParams) {
  Circuit c;
  EXPECT_FALSE(c.superconducting());
  EXPECT_THROW(c.superconducting_params(), Error);
  c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  EXPECT_TRUE(c.superconducting());
  EXPECT_DOUBLE_EQ(c.superconducting_params().tc, 1.2);
  EXPECT_THROW(c.set_superconducting({-1.0, 1.0}), CircuitError);
}

// ---- ElectrostaticModel -------------------------------------------------------

TEST(Electrostatics, SetCapacitanceMatrix) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  EXPECT_EQ(m.island_count(), 1u);
  EXPECT_EQ(m.external_count(), 3u);
  // C_sigma = C1 + C2 + Cg = 5 aF.
  EXPECT_NEAR(m.c_ii()(0, 0), 5e-18, 1e-30);
  EXPECT_NEAR(m.total_capacitance(f.island), 5e-18, 1e-30);
  // kappa = 1 / C_sigma.
  EXPECT_NEAR(m.kappa()(0, 0), 1.0 / 5e-18, 1e3);
  // Source gains: C1/Cs, C2/Cs, Cg/Cs.
  EXPECT_NEAR(m.source_gain()(0, 0), 0.2, 1e-12);
  EXPECT_NEAR(m.source_gain()(0, 1), 0.2, 1e-12);
  EXPECT_NEAR(m.source_gain()(0, 2), 0.6, 1e-12);
}

TEST(Electrostatics, KappaNodeZeroOffIslands) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  EXPECT_DOUBLE_EQ(m.kappa_node(f.src, f.island), 0.0);
  EXPECT_DOUBLE_EQ(m.kappa_node(f.src, f.src), 0.0);
  EXPECT_GT(m.kappa_node(f.island, f.island), 0.0);
}

TEST(Electrostatics, IslandPotentialSuperposition) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  // One excess electron, all sources grounded: v = -e / C_sigma.
  const auto v1 = m.island_potentials({-kElementaryCharge}, {0.0, 0.0, 0.0});
  EXPECT_NEAR(v1[0], -kElementaryCharge / 5e-18, 1e-9);
  // Neutral island, gate at 10 mV: v = 0.6 * 10 mV.
  const auto v2 = m.island_potentials({0.0}, {0.0, 0.0, 0.01});
  EXPECT_NEAR(v2[0], 0.006, 1e-12);
  // Superposition of the two.
  const auto v3 = m.island_potentials({-kElementaryCharge}, {0.0, 0.0, 0.01});
  EXPECT_NEAR(v3[0], v1[0] + v2[0], 1e-12);
}

TEST(Electrostatics, ChargeDeltaMatchesPotentialDifference) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  const double q = -kElementaryCharge;
  const auto v0 = m.island_potentials({0.0}, {0.0, 0.0, 0.0});
  const auto v1 = m.island_potentials({q}, {0.0, 0.0, 0.0});
  std::vector<double> dv(1, 0.0);
  m.add_charge_delta(f.island, q, dv);
  EXPECT_NEAR(dv[0], v1[0] - v0[0], 1e-15);
  EXPECT_NEAR(m.potential_delta(0, f.island, q), v1[0] - v0[0], 1e-15);
  // Non-island: no contribution.
  EXPECT_DOUBLE_EQ(m.potential_delta(0, f.src, q), 0.0);
}

TEST(Electrostatics, SourceStepDeltaMatchesGain) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  EXPECT_NEAR(m.source_step_delta(0, f.gate, 0.01), 0.006, 1e-12);
}

TEST(Electrostatics, TwoIslandCouplingSymmetry) {
  Circuit c;
  const NodeId l = c.add_external();
  const NodeId r = c.add_external();
  const NodeId i1 = c.add_island();
  const NodeId i2 = c.add_island();
  c.add_junction(l, i1, 1e6, 1e-18);
  c.add_junction(i1, i2, 1e6, 2e-18);
  c.add_junction(i2, r, 1e6, 1e-18);
  ElectrostaticModel m(c);
  // kappa entries are ~1/aF ~ 1e17, so symmetry is relative.
  const double scale = m.kappa_node(i1, i1);
  EXPECT_TRUE(m.kappa().is_symmetric(1e-9 * scale));
  EXPECT_NEAR(m.kappa_node(i1, i2), m.kappa_node(i2, i1), 1e-9 * scale);
  EXPECT_GT(m.kappa_node(i1, i2), 0.0);  // positive coupling
  // Tighter self-coupling than cross-coupling.
  EXPECT_GT(m.kappa_node(i1, i1), m.kappa_node(i1, i2));
}

TEST(Electrostatics, FloatingIslandRejected) {
  Circuit c;
  const NodeId i1 = c.add_island();
  const NodeId i2 = c.add_island();
  // i1-i2 coupled to each other but to no fixed potential: C_II singular.
  c.add_capacitor(i1, i2, 1e-18);
  EXPECT_THROW(ElectrostaticModel{c}, NumericError);
}

// ---- Parser -----------------------------------------------------------------

const char* kPaperExample = R"(
#SET component definitions
junc 1 1 4 1meg 1e-18
junc 2 2 4 1meg 1e-18
cap 3 4 3e-18
charge 4 0.0

#Input source information
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1

#Overall node information
num j 2
num ext 3
num nodes 4

#Simulation specific information
temp 5
cotunnel
record 1 2 2
jumps 100000 1
sweep 2 0.02 0.00005
)";

TEST(Parser, PaperExampleInputFile) {
  const SimulationInput in = parse_simulation_input(std::string(kPaperExample));
  EXPECT_EQ(in.circuit.node_count(), 5u);  // ground + 4
  EXPECT_EQ(in.circuit.junction_count(), 2u);
  EXPECT_EQ(in.circuit.capacitor_count(), 1u);
  EXPECT_TRUE(in.circuit.is_island(4));
  EXPECT_FALSE(in.circuit.is_island(3));
  EXPECT_DOUBLE_EQ(in.circuit.source(1).value(0.0), 0.02);
  EXPECT_DOUBLE_EQ(in.circuit.source(2).value(0.0), -0.02);
  EXPECT_DOUBLE_EQ(in.temperature, 5.0);
  EXPECT_TRUE(in.cotunneling);
  EXPECT_EQ(in.record_junctions, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(in.max_jumps, 100000u);
  EXPECT_EQ(in.repeats, 1u);
  ASSERT_TRUE(in.sweep.has_value());
  EXPECT_EQ(in.sweep->source, 2);
  EXPECT_DOUBLE_EQ(in.sweep->max, 0.02);
  EXPECT_DOUBLE_EQ(in.sweep->step, 0.00005);
  EXPECT_EQ(in.sweep->mirror, 1);
  // Junction resistances parsed with the "meg" suffix.
  EXPECT_DOUBLE_EQ(in.circuit.junction(0).resistance, 1e6);
}

TEST(Parser, SuperconductingDirective) {
  const SimulationInput in = parse_simulation_input(std::string(R"(
num ext 2
num nodes 3
junc 1 1 3 210k 110a
junc 2 2 3 210k 110a
temp 0.52
super 0.21 1.2
)"));
  ASSERT_TRUE(in.circuit.superconducting());
  EXPECT_NEAR(in.circuit.superconducting_params().delta0,
              0.21e-3 * kElectronVolt, 1e-28);
  EXPECT_DOUBLE_EQ(in.circuit.superconducting_params().tc, 1.2);
}

TEST(Parser, StepAndPulseSources) {
  const SimulationInput in = parse_simulation_input(std::string(R"(
num ext 2
num nodes 3
junc 1 1 3 1meg 1a
junc 2 2 3 1meg 1a
vstep 1 0 0.01 1e-9
vpulse 2 0 0.01 0 1e-9 2e-9
time 1e-6
)"));
  EXPECT_DOUBLE_EQ(in.circuit.source(1).value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(in.circuit.source(1).value(2e-9), 0.01);
  EXPECT_DOUBLE_EQ(in.circuit.source(2).value(0.5e-9), 0.01);
  EXPECT_DOUBLE_EQ(in.max_time, 1e-6);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_simulation_input(std::string("num ext 1\nnum nodes 2\nbogus 1 2\n"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, MissingNumBlockRejected) {
  EXPECT_THROW(parse_simulation_input(std::string("junc 1 1 2 1meg 1a\n")),
               ParseError);
}

TEST(Parser, JunctionCountCrossChecked) {
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 1
num nodes 2
num j 2
junc 1 1 2 1meg 1a
)")),
               ParseError);
}

TEST(Parser, RecordCountMismatchRejected) {
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 1
num nodes 2
junc 1 1 2 1meg 1a
record 2 1
)")),
               ParseError);
}

TEST(Parser, NodeOutOfRangeRejected) {
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 1
num nodes 2
junc 1 1 7 1meg 1a
)")),
               ParseError);
}

TEST(Parser, SweepOnIslandRejected) {
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 1
num nodes 2
junc 1 1 2 1meg 1a
sweep 2 0.01 0.001
)")),
               ParseError);
}

TEST(Parser, DuplicateSourceRejected) {
  // A second source on the same lead would silently overwrite the first;
  // the diagnostic names both lines.
  try {
    parse_simulation_input(std::string(R"(num ext 1
num nodes 2
junc 1 1 2 1meg 1a
vdc 1 0.02
vstep 1 0.0 0.02 1e-9
)"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("already has a source"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  }
  // Same kind twice is just as wrong.
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 1
num nodes 2
junc 1 1 2 1meg 1a
vdc 1 0.02
vdc 1 0.03
)")),
               ParseError);
}

TEST(Parser, MixedSuperconductingAndCotunnelingRejected) {
  // Cotunneling rates exist for normal-state circuits only; the combination
  // is a ParseError at parse time, not a CircuitError at engine build.
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 2
num nodes 3
junc 1 1 3 210k 110a
junc 2 3 2 210k 110a
temp 0.52
super 0.21 1.2
cotunnel
)")),
               ParseError);
  // Directive order must not matter.
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 2
num nodes 3
junc 1 1 3 210k 110a
junc 2 3 2 210k 110a
temp 0.52
cotunnel
super 0.21 1.2
)")),
               ParseError);
}

TEST(Parser, DanglingIslandRejected) {
  // Node 3 is declared an island but connects to nothing: Circuit::validate
  // reports it as a CircuitError (which is also a semsim::Error).
  EXPECT_THROW(parse_simulation_input(std::string(R"(
num ext 1
num nodes 3
junc 1 1 2 1meg 1a
)")),
               CircuitError);
}

}  // namespace
}  // namespace semsim
