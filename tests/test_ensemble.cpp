// Ensemble engine lockdown (ROADMAP item 3, the v3 run API).
//
// Three layers under test here:
//
//   * core/ensemble.h — the lockstep gang: every lane's trajectory must be
//     bitwise identical to the same Engine stepping solo, through BOTH
//     step_round() and the software-pipelined run_events() (double-buffered
//     arena), and a faulted lane must die alone;
//   * analysis/ensemble.h — replica determinism (thread-count invariant
//     canonical documents, replica rows independent of the population
//     size), perturbation purity, and per-replica fault degradation;
//   * the v3 surface — the "ensemble" document object, fingerprint folding
//     (disabled spec == pre-ensemble bytes), the envelope codec, and the
//     serve daemon: served-vs-direct bitwise, cache hits, and cancel ->
//     resume through the replica-granular spool checkpoint.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/api.h"
#include "analysis/ensemble.h"
#include "analysis/ensemble_driver.h"
#include "base/error.h"
#include "core/engine.h"
#include "core/ensemble.h"
#include "core/options.h"
#include "io/envelope.h"
#include "io/json.h"
#include "netlist/circuit.h"
#include "netlist/parser.h"
#include "netlist/waveform.h"
#include "obs/ensemble_stats.h"
#include "serve/scheduler.h"

namespace semsim {
namespace {

// ---- fixtures -------------------------------------------------------------

/// The golden-suite SET: two junctions, one island, one gate capacitor.
Circuit make_set(double v_src, double v_drn, double v_gate) {
  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);
  c.set_source(src, Waveform::dc(v_src));
  c.set_source(drn, Waveform::dc(-v_drn));
  c.set_source(gate, Waveform::dc(v_gate));
  return c;
}

/// Junction chain: conducting at T = 0 for bias 0.012, blockaded at 0.
Circuit make_chain(int stages, double bias) {
  Circuit c;
  const NodeId vp = c.add_external("vp");
  const NodeId vn = c.add_external("vn");
  c.set_source(vp, Waveform::dc(bias));
  c.set_source(vn, Waveform::dc(-bias));
  for (int s = 0; s < stages; ++s) {
    const NodeId i = c.add_island();
    c.add_junction(vp, i, 1e6, 1e-18);
    c.add_junction(i, vn, 1e6, 1e-18);
    c.add_capacitor(i, Circuit::kGroundNode, 20e-18);
  }
  return c;
}

/// Plain measurement input (no sweep): the fused-gang driver shape.
constexpr char kMeasureInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 1 0.005
vdc 2 -0.005
vdc 3 0.0
temp 5
record 1 2
jumps 1500
)";

struct EventRecord {
  std::uint64_t time_bits = 0;
  std::size_t index = 0;
  NodeId from = 0;
  NodeId to = 0;

  bool operator==(const EventRecord&) const = default;
};

EventRecord record_of(const Event& e) {
  return {std::bit_cast<std::uint64_t>(e.time), e.index, e.from, e.to};
}

/// Full recorded trajectory of a solo engine: `n` events via run_events.
std::vector<EventRecord> solo_trajectory(const Circuit& c,
                                         const EngineOptions& o,
                                         std::uint64_t n) {
  Engine engine(c, o);
  std::vector<EventRecord> out;
  out.reserve(n);
  engine.set_event_callback(
      [&](const Engine&, const Event& e) { out.push_back(record_of(e)); });
  engine.run_events(n);
  return out;
}

EngineOptions lane_options(std::uint64_t seed, double temperature,
                           bool fast_rates) {
  EngineOptions o;
  o.temperature = temperature;
  o.seed = seed;
  o.fast_rates = fast_rates;
  return o;
}

// ---- core lockstep gang: bitwise vs solo ----------------------------------

TEST(Lockstep, StepRoundTrajectoriesBitwiseIdenticalToSolo) {
  // Four lanes on four DIFFERENT devices (distinct gate biases, so the lane
  // segments in the shared arena have genuinely different ΔW populations),
  // advanced round by round. Every lane's per-round event must match the
  // solo engine bit for bit — the central lockstep contract.
  const std::vector<double> gates = {0.0, 0.004, 0.009, 0.013};
  std::deque<Circuit> circuits;
  std::deque<Engine> lanes;
  std::deque<Engine> solos;
  std::vector<Engine*> ptrs;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    circuits.push_back(make_set(0.02, 0.02, gates[i]));
    const EngineOptions o = lane_options(31 + i, 4.2, /*fast_rates=*/false);
    lanes.emplace_back(circuits.back(), o);
    solos.emplace_back(circuits.back(), o);
    ptrs.push_back(&lanes.back());
  }

  EnsembleEngine ens(ptrs, /*fast_rates=*/false);
  Event se;
  for (int round = 0; round < 1500; ++round) {
    ASSERT_EQ(ens.step_round(), gates.size()) << "round " << round;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      ASSERT_TRUE(ens.last_round_executed()[i]);
      ASSERT_TRUE(solos[i].step(&se));
      ASSERT_EQ(record_of(ens.last_event(i)), record_of(se))
          << "lane " << i << " round " << round;
    }
  }
  for (std::size_t i = 0; i < gates.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ens.lane(i).time()),
              std::bit_cast<std::uint64_t>(solos[i].time()))
        << "lane " << i;
  }
}

TEST(Lockstep, PipelinedRunEventsBitwiseIdenticalToSolo) {
  // run_events() fuses phase B of round r with phase A of round r+1 over a
  // double-buffered arena — a different interleaving ACROSS lanes than
  // step_round(), which must not change a single per-lane bit. Fast-rates
  // mode on an AVX2-era host also routes the fused pass through the packed
  // kernel, so this doubles as its integration lockdown.
  const std::vector<double> gates = {0.0, 0.004, 0.009, 0.013};
  constexpr std::uint64_t kEvents = 1500;
  std::deque<Circuit> circuits;
  std::deque<Engine> lanes;
  std::vector<Engine*> ptrs;
  std::vector<std::vector<EventRecord>> want(gates.size());
  std::vector<std::vector<EventRecord>> got(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    circuits.push_back(make_set(0.02, 0.02, gates[i]));
    const EngineOptions o = lane_options(77 + i, 4.2, /*fast_rates=*/true);
    want[i] = solo_trajectory(circuits.back(), o, kEvents);
    ASSERT_EQ(want[i].size(), kEvents);
    lanes.emplace_back(circuits.back(), o);
    lanes.back().set_event_callback(
        [&got, i](const Engine&, const Event& e) {
          got[i].push_back(record_of(e));
        });
    ptrs.push_back(&lanes.back());
  }

  EnsembleEngine ens(ptrs, /*fast_rates=*/true);
  ASSERT_EQ(ens.run_events(kEvents), kEvents * gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    ASSERT_EQ(got[i].size(), kEvents) << "lane " << i;
    for (std::uint64_t e = 0; e < kEvents; ++e) {
      ASSERT_EQ(got[i][e], want[i][e]) << "lane " << i << " event " << e;
    }
  }
}

TEST(Lockstep, MixedRoundAndPipelinedDrivingStaysOnTheSoloTrajectory) {
  // Alternating step_round() and run_events() batches must stay on the solo
  // trajectory: the pipelined drain (finish_round) may not leave a lane with
  // a half-committed event behind.
  Circuit c = make_set(0.02, 0.02, 0.007);
  const EngineOptions o = lane_options(5, 4.2, /*fast_rates=*/false);
  const std::vector<EventRecord> want = solo_trajectory(c, o, 1300);

  Engine lane(c, o);
  std::vector<EventRecord> got;
  lane.set_event_callback(
      [&](const Engine&, const Event& e) { got.push_back(record_of(e)); });
  std::vector<Engine*> ptrs = {&lane};
  EnsembleEngine ens(ptrs, /*fast_rates=*/false);
  std::uint64_t total = 0;
  for (int burst = 0; burst < 10; ++burst) {
    for (int r = 0; r < 30; ++r) total += ens.step_round();
    total += ens.run_events(100);
  }
  ASSERT_EQ(total, 1300u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t e = 0; e < want.size(); ++e) {
    ASSERT_EQ(got[e], want[e]) << "event " << e;
  }
}

TEST(Lockstep, FaultedLaneDiesAloneOthersBitwiseUntouched) {
  // Lane 1 is scheduled to corrupt a rate at event 120 (guard/fault.h); the
  // gang must mark exactly that lane dead — with the invariant code — while
  // the survivors' trajectories remain bitwise the solo ones.
  const std::vector<double> gates = {0.0, 0.006, 0.012};
  constexpr std::uint64_t kEvents = 800;
  FaultPlan plan;
  FaultSpec f;
  f.kind = FaultKind::kNanRate;
  f.at_event = 120;
  plan.faults.push_back(f);

  std::deque<Circuit> circuits;
  std::deque<Engine> lanes;
  std::vector<Engine*> ptrs;
  std::vector<std::vector<EventRecord>> want(gates.size());
  std::vector<std::vector<EventRecord>> got(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    circuits.push_back(make_set(0.02, 0.02, gates[i]));
    EngineOptions o = lane_options(11 + i, 4.2, /*fast_rates=*/false);
    if (i != 1) want[i] = solo_trajectory(circuits.back(), o, kEvents);
    if (i == 1) o.fault = FaultInjector(&plan, 0, 0);
    lanes.emplace_back(circuits.back(), o);
    lanes.back().set_event_callback(
        [&got, i](const Engine&, const Event& e) {
          got[i].push_back(record_of(e));
        });
    ptrs.push_back(&lanes.back());
  }

  EnsembleEngine ens(ptrs, /*fast_rates=*/false);
  ens.run_events(kEvents);
  EXPECT_TRUE(ens.state(0).alive);
  EXPECT_TRUE(ens.state(2).alive);
  ASSERT_FALSE(ens.state(1).alive);
  EXPECT_EQ(ens.state(1).code, ErrorCode::kNonFiniteRate);
  EXPECT_FALSE(ens.state(1).runnable());
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_EQ(got[i].size(), kEvents) << "lane " << i;
    for (std::uint64_t e = 0; e < kEvents; ++e) {
      ASSERT_EQ(got[i][e], want[i][e]) << "lane " << i << " event " << e;
    }
  }
}

TEST(Lockstep, StuckAndGatedLanesDropOutOfRounds) {
  // An unbiased SET at T = 0 is Coulomb-blockaded: its first step_begin
  // returns false and the lane parks as `stuck` without poisoning the
  // round. A caller-gated lane (set_enabled) behaves the same way.
  std::deque<Circuit> circuits;
  circuits.push_back(make_chain(4, 0.012));
  circuits.push_back(make_chain(4, 0.0));  // blockaded
  circuits.push_back(make_chain(4, 0.012));
  std::deque<Engine> lanes;
  std::vector<Engine*> ptrs;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    lanes.emplace_back(circuits[i], lane_options(3 + i, 0.0, false));
    ptrs.push_back(&lanes.back());
  }
  EnsembleEngine ens(ptrs, /*fast_rates=*/false);
  EXPECT_EQ(ens.step_round(), 2u);
  EXPECT_TRUE(ens.state(1).stuck);
  EXPECT_TRUE(ens.state(1).alive);
  ens.set_enabled(2, false);
  EXPECT_EQ(ens.step_round(), 1u);
  EXPECT_TRUE(ens.last_round_executed()[0]);
  EXPECT_FALSE(ens.last_round_executed()[2]);
  ens.set_enabled(2, true);
  EXPECT_EQ(ens.step_round(), 2u);
  // All lanes gated: run_events must return 0, not spin.
  ens.set_enabled(0, false);
  ens.set_enabled(2, false);
  EXPECT_EQ(ens.run_events(100), 0u);
}

// ---- analysis layer: determinism and fault degradation --------------------

RunRequest ensemble_request(std::uint32_t replicas, unsigned threads = 1,
                            std::uint64_t seed = 9) {
  RunRequest req;
  req.input = parse_simulation_input(kMeasureInput);
  req.seed = seed;
  req.threads = threads;
  req.ensemble.enabled = true;
  req.ensemble.replicas = replicas;
  req.ensemble.bg_charge.spread = 0.05;
  req.ensemble.resistance.spread = 0.03;
  return req;
}

TEST(EnsembleDeterminism, CanonicalDocumentIsThreadCountInvariant) {
  // 10 replicas = 3 gang tiles, sharded across 1 and 8 workers: the
  // canonical v3 documents must be byte-identical (replica streams derive
  // from the replica index, never the executing thread).
  const RunResult r1 = run(ensemble_request(10, 1));
  const RunResult r8 = run(ensemble_request(10, 8));
  EXPECT_EQ(r1.to_json(true), r8.to_json(true));
  ASSERT_TRUE(r1.driver.ensemble.has_value());
  EXPECT_EQ(r1.driver.ensemble->rows.size(), 10u);
  EXPECT_EQ(r1.driver.ensemble->observable_stats.n_ok, 10u);
}

TEST(EnsembleDeterminism, ReplicaRowsIndependentOfPopulationSize) {
  // Replica r's device AND trajectory are pure functions of (effective
  // seed, r): growing the population from 4 to 8 replicas must not move a
  // bit in the first four rows.
  const RunResult small = run(ensemble_request(4));
  const RunResult big = run(ensemble_request(8));
  ASSERT_TRUE(small.driver.ensemble.has_value());
  ASSERT_TRUE(big.driver.ensemble.has_value());
  for (std::size_t r = 0; r < 4; ++r) {
    const ReplicaRow& a = small.driver.ensemble->rows[r];
    const ReplicaRow& b = big.driver.ensemble->rows[r];
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.observable),
              std::bit_cast<std::uint64_t>(b.observable))
        << "replica " << r;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.current.stderr_mean),
              std::bit_cast<std::uint64_t>(b.current.stderr_mean))
        << "replica " << r;
    ASSERT_EQ(a.events, b.events) << "replica " << r;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.sim_time),
              std::bit_cast<std::uint64_t>(b.sim_time))
        << "replica " << r;
  }
}

TEST(EnsembleDeterminism, UnperturbedSingleReplicaMatchesSoloRunBitwise) {
  // The N = 1, zero-spread ensemble runs the solo device on the solo stream
  // through the gang machinery: the measurement must be the non-ensemble
  // result bit for bit (the "N = 1 path identical" acceptance gate).
  RunRequest solo;
  solo.input = parse_simulation_input(kMeasureInput);
  solo.seed = 9;
  const RunResult direct = run(solo);

  RunRequest ens = solo;
  ens.ensemble.enabled = true;
  ens.ensemble.replicas = 1;
  const RunResult gang = run(ens);

  ASSERT_TRUE(direct.driver.current.has_value());
  ASSERT_TRUE(gang.driver.current.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(direct.driver.current->mean),
            std::bit_cast<std::uint64_t>(gang.driver.current->mean));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(direct.driver.current->stderr_mean),
            std::bit_cast<std::uint64_t>(gang.driver.current->stderr_mean));
  EXPECT_EQ(direct.driver.events, gang.driver.events);
  ASSERT_TRUE(gang.driver.ensemble.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(
                gang.driver.ensemble->rows[0].observable),
            std::bit_cast<std::uint64_t>(direct.driver.current->mean));
}

TEST(EnsembleDeterminism, PerturbationDrawsArePureAndSeedScoped) {
  const SimulationInput input = parse_simulation_input(kMeasureInput);
  EnsembleSpec spec;
  spec.enabled = true;
  spec.replicas = 8;
  spec.bg_charge.spread = 0.1;
  spec.resistance.spread = 0.05;
  spec.capacitance.spread = 0.02;
  spec.temperature.spread = 0.01;

  const ReplicaPerturbation a = draw_replica_perturbation(input, spec, 42, 3);
  const ReplicaPerturbation b = draw_replica_perturbation(input, spec, 42, 3);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.temperature_factor),
            std::bit_cast<std::uint64_t>(b.temperature_factor));
  ASSERT_EQ(a.r_factor.size(), input.circuit.junction_count());
  ASSERT_EQ(a.bg_offset_e.size(), input.circuit.islands().size());
  for (std::size_t j = 0; j < a.r_factor.size(); ++j) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.r_factor[j]),
              std::bit_cast<std::uint64_t>(b.r_factor[j]));
    EXPECT_GT(a.r_factor[j], 0.0);  // clamped to the physical floor
    EXPECT_GT(a.c_factor[j], 0.0);
  }
  // A different replica (or seed) is a different, non-trivial draw.
  const ReplicaPerturbation c = draw_replica_perturbation(input, spec, 42, 4);
  EXPECT_NE(a.bg_offset_e[0], c.bg_offset_e[0]);
  const ReplicaPerturbation d = draw_replica_perturbation(input, spec, 43, 3);
  EXPECT_NE(a.bg_offset_e[0], d.bg_offset_e[0]);

  // spec.seed overrides the run seed; 0 inherits it.
  EnsembleSpec pinned = spec;
  pinned.seed = 42;
  EXPECT_EQ(ensemble_effective_seed(pinned, 7), 42u);
  EXPECT_EQ(ensemble_effective_seed(spec, 7), 7u);

  // materialize_replica applies the draws to the element tables.
  const SimulationInput rep = materialize_replica(input, spec, 42, 3);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(rep.circuit.junction(0).resistance),
            std::bit_cast<std::uint64_t>(
                input.circuit.junction(0).resistance * a.r_factor[0]));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(rep.temperature),
            std::bit_cast<std::uint64_t>(
                input.temperature * a.temperature_factor));
}

TEST(EnsembleFaultIsolation, PoisonedReplicaDegradesRestBitwiseIdentical) {
  // Replica 2's engine (and its solo retries — the fault matches every
  // attempt) corrupts a rate: the row must degrade to failed:<code>, count
  // against the yield, and leave the other N - 1 rows bitwise identical to
  // the clean run.
  const RunResult clean = run(ensemble_request(6));

  FaultPlan plan;
  FaultSpec f;
  f.kind = FaultKind::kNanRate;
  f.unit = 2;
  f.at_event = 100;
  plan.faults.push_back(f);
  RunRequest req = ensemble_request(6);
  req.fault_plan = &plan;
  req.retry.max_attempts = 2;
  const RunResult faulted = run(req);

  ASSERT_TRUE(faulted.driver.ensemble.has_value());
  const EnsembleResult& e = *faulted.driver.ensemble;
  ASSERT_EQ(e.rows.size(), 6u);
  EXPECT_FALSE(e.rows[2].ok);
  EXPECT_EQ(e.rows[2].code, ErrorCode::kNonFiniteRate);
  EXPECT_EQ(replica_status_label(e.rows[2]), "failed:invariant.non_finite_rate");
  EXPECT_EQ(e.rows[2].attempts, 2u);
  EXPECT_TRUE(faulted.driver.degraded());
  EXPECT_EQ(e.observable_stats.n_ok, 5u);
  EXPECT_DOUBLE_EQ(e.observable_stats.yield, 5.0 / 6.0);
  for (std::size_t r = 0; r < 6; ++r) {
    if (r == 2) continue;
    const ReplicaRow& want = clean.driver.ensemble->rows[r];
    const ReplicaRow& got = e.rows[r];
    EXPECT_TRUE(got.ok) << "replica " << r;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got.observable),
              std::bit_cast<std::uint64_t>(want.observable))
        << "replica " << r;
    ASSERT_EQ(got.events, want.events) << "replica " << r;
  }
}

TEST(EnsembleFaultIsolation, StrictModeAbortsWithTheReplicaInContext) {
  FaultPlan plan;
  FaultSpec f;
  f.kind = FaultKind::kNanRate;
  f.unit = 1;
  f.at_event = 80;
  plan.faults.push_back(f);
  RunRequest req = ensemble_request(3);
  req.fault_plan = &plan;
  req.retry.strict = true;
  try {
    run(req);
    FAIL() << "strict ensemble run with a poisoned replica did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFiniteRate);
    EXPECT_NE(std::string(e.what()).find("replica 1"), std::string::npos)
        << e.what();
  }
}

TEST(EnsembleProgress, ReplicaCompletionStreamsToTheSink) {
  struct RecordingSink : ProgressSink {
    std::uint64_t started = 0;
    std::vector<std::uint32_t> done;
    int not_ok = 0;
    void on_ensemble_started(std::uint64_t replicas_total) override {
      started = replicas_total;
    }
    void on_replica_done(std::uint32_t replica, bool ok) override {
      done.push_back(replica);
      if (!ok) ++not_ok;
    }
  } sink;
  RunRequest req = ensemble_request(5);
  req.progress = &sink;
  run(req);
  EXPECT_EQ(sink.started, 5u);
  ASSERT_EQ(sink.done.size(), 5u);
  EXPECT_EQ(sink.not_ok, 0);
  std::vector<std::uint32_t> sorted = sink.done;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

// ---- spec validation and band statistics ----------------------------------

TEST(EnsembleSpecTest, ValidateRejectsStructuralNonsense) {
  const auto code_of = [](EnsembleSpec spec) {
    try {
      spec.validate();
    } catch (const Error& e) {
      return e.code();
    }
    return ErrorCode::kNone;
  };
  EnsembleSpec ok;
  EXPECT_EQ(code_of(ok), ErrorCode::kNone);

  EnsembleSpec zero = ok;
  zero.replicas = 0;
  EXPECT_NE(code_of(zero), ErrorCode::kNone);

  EnsembleSpec negative = ok;
  negative.resistance.spread = -0.1;
  EXPECT_NE(code_of(negative), ErrorCode::kNone);

  EnsembleSpec nan = ok;
  nan.bg_charge.spread = std::nan("");
  EXPECT_NE(code_of(nan), ErrorCode::kNone);

  EnsembleSpec inverted = ok;
  inverted.yield_min = 2.0;
  inverted.yield_max = 1.0;
  EXPECT_NE(code_of(inverted), ErrorCode::kNone);

  // Wire spellings of the distributions round-trip; garbage is refused.
  PerturbationSpec::Dist dist;
  ASSERT_TRUE(perturbation_dist_from("uniform", &dist));
  EXPECT_EQ(dist, PerturbationSpec::Dist::kUniform);
  ASSERT_TRUE(perturbation_dist_from(
      perturbation_dist_name(PerturbationSpec::Dist::kGaussian), &dist));
  EXPECT_EQ(dist, PerturbationSpec::Dist::kGaussian);
  EXPECT_FALSE(perturbation_dist_from("lognormal", &dist));
}

TEST(EnsembleSpecTest, AccumulatorBandsAndYieldWindow) {
  EnsembleAccumulator a(/*yield_min=*/1.0, /*yield_max=*/3.0);
  a.add_ok(2.0);    // in window
  a.add_ok(-2.5);   // |.| in window
  a.add_ok(4.0);    // ok but outside the window: a yield loss
  a.add_failed();   // failed replica: counted in the denominator
  EXPECT_EQ(a.n_ok(), 3u);
  EXPECT_EQ(a.n_total(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), (2.0 - 2.5 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.yield(), 2.0 / 4.0);
  EXPECT_GT(a.spread(), 0.0);
  // Degenerate cases stay finite and defined.
  EnsembleAccumulator empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.spread(), 0.0);
  EXPECT_DOUBLE_EQ(empty.yield(), 0.0);
}

// ---- the v3 document and fingerprint --------------------------------------

TEST(EnsembleV3Json, DocumentCarriesSpecRowsAndBands) {
  RunRequest req = ensemble_request(4);
  req.ensemble.yield_min = 1e-22;
  const RunResult res = run(req);
  const JsonValue doc = JsonValue::parse(res.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "semsim.run_result/v3");
  const JsonValue& ens = doc.at("ensemble");
  EXPECT_EQ(ens.at("replicas").as_number(), 4.0);
  EXPECT_EQ(ens.at("spec").at("bg_spread").as_number(), 0.05);
  EXPECT_EQ(ens.at("spec").at("bg_dist").as_string(), "gaussian");
  const auto& rows = ens.at("replica_rows").items();
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(rows[r].at("replica").as_number(), static_cast<double>(r));
    EXPECT_EQ(rows[r].at("status").as_string(), "ok");
  }
  const JsonValue& band = ens.at("stats");
  EXPECT_TRUE(std::isfinite(band.at("mean_A").as_number()));
  EXPECT_LE(band.at("min_A").as_number(), band.at("max_A").as_number());
  EXPECT_EQ(band.at("n_ok").as_number(), 4.0);
  EXPECT_EQ(band.at("yield").as_number(), 1.0);
}

TEST(EnsembleV3Json, NonEnsembleDocumentKeepsTheV2Shape) {
  RunRequest req;
  req.input = parse_simulation_input(kMeasureInput);
  req.seed = 3;
  const RunResult res = run(req);
  const JsonValue doc = JsonValue::parse(res.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "semsim.run_result/v3");
  // Absent "ensemble" object == exactly the v2 shape: v2 readers that
  // ignore the schema suffix keep parsing these documents.
  EXPECT_EQ(doc.find("ensemble"), nullptr);
}

TEST(EnsembleV3Json, FingerprintFoldsTheSpecOnlyWhenEnabled) {
  RunRequest base;
  base.input = parse_simulation_input(kMeasureInput);
  base.seed = 9;
  const std::uint64_t fp = base.fingerprint();

  // A DISABLED spec — whatever its fields say — must leave the fingerprint
  // byte-identical to pre-ensemble builds (v2 checkpoint/cache compat).
  RunRequest disabled = base;
  disabled.ensemble.replicas = 64;
  disabled.ensemble.bg_charge.spread = 0.5;
  EXPECT_EQ(disabled.fingerprint(), fp);

  RunRequest enabled = base;
  enabled.ensemble.enabled = true;
  const std::uint64_t fp_on = enabled.fingerprint();
  EXPECT_NE(fp_on, fp);

  // Every result-affecting scalar of the spec moves the fingerprint.
  RunRequest r = enabled;
  r.ensemble.replicas = 16;
  EXPECT_NE(r.fingerprint(), fp_on);
  r = enabled;
  r.ensemble.seed = 1234;
  EXPECT_NE(r.fingerprint(), fp_on);
  r = enabled;
  r.ensemble.bg_charge.spread = 0.02;
  EXPECT_NE(r.fingerprint(), fp_on);
  r = enabled;
  r.ensemble.bg_charge.dist = PerturbationSpec::Dist::kUniform;
  EXPECT_NE(r.fingerprint(), fp_on);
  r = enabled;
  r.ensemble.yield_max = 1e-18;
  EXPECT_NE(r.fingerprint(), fp_on);
}

// ---- envelope codec -------------------------------------------------------

TEST(EnsembleEnvelope, SpecRoundTripsThroughTheCodec) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kSubmit;
  env.netlist = kMeasureInput;
  env.seed = 21;
  env.ensemble.enabled = true;
  env.ensemble.replicas = 24;
  env.ensemble.seed = 99;
  env.ensemble.bg_charge.spread = 0.04;
  env.ensemble.bg_charge.dist = PerturbationSpec::Dist::kUniform;
  env.ensemble.resistance.spread = 0.03;
  env.ensemble.temperature.spread = 0.01;
  env.ensemble.yield_min = 1e-22;
  env.ensemble.yield_max = 1e-18;

  const RequestEnvelope back =
      parse_request_envelope(encode_request_envelope(env));
  EXPECT_TRUE(back.ensemble.enabled);
  EXPECT_EQ(back.ensemble.replicas, 24u);
  EXPECT_EQ(back.ensemble.seed, 99u);
  EXPECT_EQ(back.ensemble.bg_charge.spread, 0.04);
  EXPECT_EQ(back.ensemble.bg_charge.dist, PerturbationSpec::Dist::kUniform);
  EXPECT_EQ(back.ensemble.resistance.spread, 0.03);
  EXPECT_EQ(back.ensemble.resistance.dist, PerturbationSpec::Dist::kGaussian);
  EXPECT_EQ(back.ensemble.temperature.spread, 0.01);
  EXPECT_EQ(back.ensemble.yield_min, 1e-22);
  EXPECT_EQ(back.ensemble.yield_max, 1e-18);

  // No ensemble section on the wire == a disabled spec (v2-era requests).
  RequestEnvelope plain;
  plain.verb = RequestEnvelope::Verb::kSubmit;
  plain.netlist = kMeasureInput;
  const std::string encoded = encode_request_envelope(plain);
  EXPECT_EQ(encoded.find("ensemble"), std::string::npos);
  EXPECT_FALSE(parse_request_envelope(encoded).ensemble.enabled);
}

TEST(EnsembleEnvelope, StrictParseRejectsGarbageSpecs) {
  const auto reject = [](const std::string& ensemble_json) {
    const std::string doc =
        R"({"schema":"semsim.request/v1","verb":"submit","netlist":"x",)"
        R"("ensemble":)" +
        ensemble_json + "}";
    try {
      parse_request_envelope(doc);
    } catch (const Error& e) {
      return e.code();
    }
    return ErrorCode::kNone;
  };
  EXPECT_EQ(reject(R"({"replicas":0})"), ErrorCode::kParseSyntax);
  EXPECT_EQ(reject(R"({"replicas":4,"bg_spread":-0.5})"),
            ErrorCode::kParseSyntax);
  EXPECT_EQ(reject(R"({"replicas":4,"bg_dist":"lognormal"})"),
            ErrorCode::kParseSyntax);
  EXPECT_EQ(reject(R"({"replicas":4,"yield_min":2,"yield_max":1})"),
            ErrorCode::kParseSyntax);
  EXPECT_EQ(reject(R"("not an object")"), ErrorCode::kParseSyntax);
  EXPECT_EQ(reject(R"({"replicas":4,"bg_spread":0.1})"), ErrorCode::kNone);
}

// ---- serve daemon: served == direct, cache, cancel -> resume --------------

JobStatus wait_terminal(const JobScheduler& sched, std::uint64_t id) {
  for (;;) {
    const std::optional<JobStatus> s = sched.status(id);
    EXPECT_TRUE(s.has_value());
    if (!s.has_value() || job_state_terminal(s->state)) return *s;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

RequestEnvelope ensemble_envelope(std::uint32_t replicas,
                                  std::uint64_t seed = 9) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kSubmit;
  env.netlist = kMeasureInput;
  env.seed = seed;
  env.ensemble.enabled = true;
  env.ensemble.replicas = replicas;
  env.ensemble.bg_charge.spread = 0.05;
  env.ensemble.resistance.spread = 0.03;
  return env;
}

TEST(EnsembleServe, ServedResultBitwiseIdenticalToDirectAndCached) {
  const std::string want = run(ensemble_request(10)).to_json(/*canonical=*/true);
  SchedulerConfig cfg;
  cfg.threads = 4;
  JobScheduler sched(cfg);
  const std::uint64_t id = sched.submit(ensemble_envelope(10));
  const JobStatus s = wait_terminal(sched, id);
  ASSERT_EQ(s.state, JobState::kDone) << s.error;
  EXPECT_FALSE(s.cached);
  EXPECT_EQ(sched.result(id), want);
  // Every replica streamed a completion report to the daemon.
  EXPECT_EQ(s.units_total, 10u);
  EXPECT_EQ(s.units_done, 10u);

  // The ensemble spec is folded into the cache key: a resubmission is born
  // done, and a different spec is a different fingerprint.
  const std::uint64_t again = sched.submit(ensemble_envelope(10));
  const std::optional<JobStatus> s2 = sched.status(again);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->state, JobState::kDone);
  EXPECT_TRUE(s2->cached);
  EXPECT_EQ(sched.result(again), want);
  const std::uint64_t other = sched.submit(ensemble_envelope(12));
  const JobStatus s3 = wait_terminal(sched, other);
  EXPECT_EQ(s3.state, JobState::kDone) << s3.error;
  EXPECT_FALSE(s3.cached);
  EXPECT_NE(sched.result(other), want);
  sched.shutdown();
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path("/tmp/" + stem + "." + std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(EnsembleServe, CancelLeavesReplicaSpoolAndResumeIsBitwise) {
  // 12 replicas = 3 gang tiles on one worker. A sleep fault parks replica 4
  // (tile 1) for half a second: tile 0's rows reach the spool, the cancel
  // lands while tile 1 sleeps, and tile 2 is never started. The resubmitted
  // job restores the spooled replicas and completes to the SAME canonical
  // bytes as an uninterrupted direct run.
  const std::string want = run(ensemble_request(12)).to_json(/*canonical=*/true);
  TempDir spool("semsim_ensemble_cancel_spool");
  SchedulerConfig cfg;
  cfg.threads = 1;
  cfg.spool_dir = spool.path;
  JobScheduler sched(cfg);

  RequestEnvelope slow = ensemble_envelope(12);
  FaultSpec f;
  f.kind = FaultKind::kSleep;
  f.unit = 4;
  f.at_event = 50;
  f.millis = 500;
  slow.fault.faults.push_back(f);
  const std::uint64_t id = sched.submit(slow);
  for (;;) {
    const std::optional<JobStatus> s = sched.status(id);
    ASSERT_TRUE(s.has_value());
    if (s->units_done >= 1 || job_state_terminal(s->state)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::optional<JobStatus> mid = sched.status(id);
  ASSERT_TRUE(mid.has_value());
  ASSERT_FALSE(job_state_terminal(mid->state))
      << "job finished before cancel could land; raise the sleep fault";
  EXPECT_TRUE(sched.cancel(id));
  const JobStatus s = wait_terminal(sched, id);
  ASSERT_EQ(s.state, JobState::kCancelled);
  ASSERT_FALSE(s.checkpoint_path.empty());
  EXPECT_TRUE(std::filesystem::exists(s.checkpoint_path));

  // Same fingerprint (the fault plan is not part of it): resumes from the
  // replica-granular spool and completes bitwise.
  const std::uint64_t again = sched.submit(ensemble_envelope(12));
  const JobStatus s2 = wait_terminal(sched, again);
  ASSERT_EQ(s2.state, JobState::kDone) << s2.error;
  EXPECT_FALSE(s2.cached);
  EXPECT_EQ(sched.result(again), want);
  EXPECT_FALSE(std::filesystem::exists(s.checkpoint_path));
  sched.shutdown();
}

}  // namespace
}  // namespace semsim
