// Differential lockdown of --fast-rates on the adaptive path.
//
// The fast thermal kernels (physics/fast_expm1.h) promise a <= 1e-12
// relative error against the libm-exact kernels. These tests check that
// promise where it actually matters: on the ΔW population a REAL adaptive
// run produces (harvested from the event stream, not synthetic uniforms),
// and on the physics the user reads out — the I–V curve — where fast and
// exact runs must be statistically indistinguishable even though their
// trajectories diverge sample by sample.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/current.h"
#include "analysis/sweep.h"
#include "base/constants.h"
#include "core/engine.h"
#include "core/options.h"
#include "netlist/circuit.h"
#include "netlist/waveform.h"
#include "physics/cotunneling.h"
#include "physics/rates.h"

namespace semsim {
namespace {

/// The golden-suite SET: two junctions, one island, one gate capacitor.
Circuit make_set(double v_src, double v_drn, double v_gate) {
  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);
  c.set_source(src, Waveform::dc(v_src));
  c.set_source(drn, Waveform::dc(v_drn));
  c.set_source(gate, Waveform::dc(v_gate));
  return c;
}

Circuit make_chain(int stages, double bias) {
  Circuit c;
  const NodeId vp = c.add_external("vp");
  const NodeId vn = c.add_external("vn");
  c.set_source(vp, Waveform::dc(bias));
  c.set_source(vn, Waveform::dc(-bias));
  for (int s = 0; s < stages; ++s) {
    const NodeId i = c.add_island();
    c.add_junction(vp, i, 1e6, 1e-18);
    c.add_junction(i, vn, 1e6, 1e-18);
    c.add_capacitor(i, Circuit::kGroundNode, 20e-18);
  }
  return c;
}

TEST(FastRatesDifferential, HarvestedDeltaWRatesWithinContract) {
  // Harvest the ΔW values an exact adaptive run at 4.2 K visits — every
  // junction, after every event, reconstructed from the live island
  // potentials exactly as the engine's kernel computes them — and check the
  // fast kernel against the exact one on that population. This is the
  // paper-relevant argument distribution: sharply bimodal (blockade vs
  // conducting), nothing like uniform sampling.
  const Circuit c = make_set(0.02, -0.02, 0.011);
  EngineOptions o;
  o.temperature = 4.2;
  o.seed = 31;
  Engine engine(c, o);
  const std::size_t j_count = c.junction_count();

  std::vector<double> harvested;
  engine.set_event_callback([&](const Engine& e, const Event&) {
    const double ec = kElementaryCharge;
    for (std::size_t j = 0; j < j_count; ++j) {
      const Junction& jn = c.junction(j);
      const double dv = e.node_voltage(jn.b) - e.node_voltage(jn.a);
      const double u = e.rate_calculator().charging_term(j);
      harvested.push_back(-ec * dv + u);
      harvested.push_back(ec * dv + u);
    }
  });
  ASSERT_EQ(engine.run_events(3000), 3000u);
  ASSERT_EQ(harvested.size(), 3000 * 2 * j_count);

  const double kt = engine.rate_calculator().kt();
  std::vector<double> g(harvested.size());
  for (std::size_t i = 0; i < harvested.size(); ++i) {
    g[i] = engine.rate_calculator()
               .channel_conductance()[i % (2 * j_count)];
  }
  std::vector<double> exact(harvested.size()), fast(harvested.size());
  tunnel_rates_batch(harvested.data(), g.data(), kt, exact.data(),
                     harvested.size());
  tunnel_rates_batch_fast(harvested.data(), g.data(), kt, fast.data(),
                          harvested.size());
  for (std::size_t i = 0; i < harvested.size(); ++i) {
    ASSERT_LE(std::abs(fast[i] - exact[i]), 1e-12 * exact[i])
        << "channel sample " << i << " dW " << harvested[i];
  }
}

TEST(FastRatesDifferential, ZeroTemperatureTrajectoryBitwiseIdentical) {
  // At T = 0 the thermal branch is never taken, so --fast-rates must be a
  // strict no-op: the full adaptive event sequence is bitwise identical.
  const Circuit c = make_chain(8, 0.012);
  EngineOptions exact_o;
  exact_o.temperature = 0.0;
  exact_o.seed = 77;
  EngineOptions fast_o = exact_o;
  fast_o.fast_rates = true;

  Engine a(c, exact_o);
  Engine b(c, fast_o);
  Event ea, eb;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(a.step(&ea));
    ASSERT_TRUE(b.step(&eb));
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ea.time),
              std::bit_cast<std::uint64_t>(eb.time))
        << "event " << i;
    ASSERT_EQ(ea.index, eb.index) << "event " << i;
    ASSERT_EQ(ea.from, eb.from) << "event " << i;
  }
}

TEST(FastRatesDifferential, AdaptiveIvCurveStatisticallyIndistinguishable) {
  // Fast and exact runs follow different microscopic trajectories (each
  // rate differs in the last bits, so waiting times and selections drift
  // apart), but they sample the same physics: every bias point's currents
  // must agree within combined statistical error. A systematic fast-kernel
  // bias — the failure this guards against — shows up as a coherent shift
  // across points far exceeding 5 sigma.
  const Circuit c = make_set(0.0, 0.0, 0.009);
  EngineOptions o;
  o.temperature = 4.2;
  o.seed = 5;

  IvSweepConfig cfg;
  cfg.swept = 1;   // src (node 0 is ground)
  cfg.mirror = 2;  // drn driven at -V
  cfg.from = 0.004;
  cfg.to = 0.028;
  cfg.step = 0.004;
  cfg.probes = {{0, 1.0}, {1, -1.0}};
  cfg.measure.warmup_events = 500;
  cfg.measure.measure_events = 6000;
  cfg.measure.blocks = 8;

  Engine exact_engine(c, o);
  const std::vector<IvPoint> exact_iv = run_iv_sweep(exact_engine, cfg);

  EngineOptions fast_o = o;
  fast_o.fast_rates = true;
  Engine fast_engine(c, fast_o);
  const std::vector<IvPoint> fast_iv = run_iv_sweep(fast_engine, cfg);

  ASSERT_EQ(exact_iv.size(), fast_iv.size());
  ASSERT_GE(exact_iv.size(), 6u);
  for (std::size_t p = 0; p < exact_iv.size(); ++p) {
    const double diff = std::abs(fast_iv[p].current - exact_iv[p].current);
    const double sigma = std::sqrt(
        exact_iv[p].stderr_mean * exact_iv[p].stderr_mean +
        fast_iv[p].stderr_mean * fast_iv[p].stderr_mean);
    EXPECT_LE(diff, 5.0 * sigma + 1e-18)
        << "bias " << exact_iv[p].bias << ": exact " << exact_iv[p].current
        << " fast " << fast_iv[p].current << " sigma " << sigma;
  }
}

TEST(FastRatesDifferential, CotunnelingRateFastWithinContract) {
  // cotunneling_rate_fast extends the <= 1e-12 contract to the second-order
  // channel (the thermal factor is the only fast-path substitution; the
  // T = 0 x^3 branch is byte-identical). Sweep the physically reachable
  // argument region: dw_total both signs across decades, intermediate
  // energies positive (the kernel is only called with e1, e2 > 0).
  for (double temperature : {0.3, 1.3, 4.2}) {
    for (double dw_mag_exp = -26; dw_mag_exp <= -19; dw_mag_exp += 0.5) {
      for (const double sign : {-1.0, 1.0}) {
        const double dw = sign * std::pow(10.0, dw_mag_exp);
        const double e1 = 3e-22, e2 = 7e-23;
        const double exact = cotunneling_rate(dw, e1, e2, 1e6, 2e6,
                                              temperature);
        const double fast = cotunneling_rate_fast(dw, e1, e2, 1e6, 2e6,
                                                  temperature);
        ASSERT_LE(std::abs(fast - exact), 1e-12 * std::abs(exact))
            << "T " << temperature << " dw " << dw;
      }
    }
    // T = 0 limit: byte-identical by construction.
    const double dw0 = -2e-22;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(
                  cotunneling_rate(dw0, 3e-22, 7e-23, 1e6, 2e6, 0.0)),
              std::bit_cast<std::uint64_t>(
                  cotunneling_rate_fast(dw0, 3e-22, 7e-23, 1e6, 2e6, 0.0)));
  }
}

TEST(FastRatesDifferential, CotunnelingIvStatisticallyIndistinguishable) {
  // Same indistinguishability bar with the cotunneling channels active —
  // this is the configuration the fast-rates extension newly touches.
  const Circuit c = make_set(0.0, 0.0, 0.002);
  EngineOptions o;
  o.temperature = 1.3;
  o.cotunneling = true;
  o.seed = 13;

  IvSweepConfig cfg;
  cfg.swept = 1;  // src (node 0 is ground)
  cfg.mirror = 2;
  cfg.from = 0.006;
  cfg.to = 0.022;
  cfg.step = 0.008;
  cfg.probes = {{0, 1.0}, {1, -1.0}};
  cfg.measure.warmup_events = 400;
  cfg.measure.measure_events = 4000;
  cfg.measure.blocks = 8;

  Engine exact_engine(c, o);
  const std::vector<IvPoint> exact_iv = run_iv_sweep(exact_engine, cfg);
  EngineOptions fast_o = o;
  fast_o.fast_rates = true;
  Engine fast_engine(c, fast_o);
  const std::vector<IvPoint> fast_iv = run_iv_sweep(fast_engine, cfg);

  ASSERT_EQ(exact_iv.size(), fast_iv.size());
  for (std::size_t p = 0; p < exact_iv.size(); ++p) {
    const double diff = std::abs(fast_iv[p].current - exact_iv[p].current);
    const double sigma = std::sqrt(
        exact_iv[p].stderr_mean * exact_iv[p].stderr_mean +
        fast_iv[p].stderr_mean * fast_iv[p].stderr_mean);
    EXPECT_LE(diff, 5.0 * sigma + 1e-18)
        << "bias " << exact_iv[p].bias;
  }
}

}  // namespace
}  // namespace semsim
