// Runtime integrity layer (src/guard/): the coded error taxonomy, the
// retry determinism contract, deterministic fault injection, the invariant
// auditor's detection paths — every injected fault class must surface with
// the RIGHT error code, not just "an exception" — and the fault-isolated
// sweep/repeat drivers that degrade a single poisoned work unit to a
// `failed:<code>` row instead of aborting the run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/api.h"
#include "analysis/driver.h"
#include "analysis/sweep.h"
#include "base/constants.h"
#include "base/error.h"
#include "base/fenwick.h"
#include "base/random.h"
#include "core/engine.h"
#include "guard/exit_codes.h"
#include "guard/fault.h"
#include "guard/integrity.h"
#include "guard/retry.h"
#include "io/json.h"
#include "netlist/parser.h"
#include "obs/checkpoint.h"

namespace semsim {
namespace {

// ---- error taxonomy -------------------------------------------------------

TEST(ErrorTaxonomy, CategoryIsTheHundredsDigit) {
  EXPECT_EQ(category_of(ErrorCode::kParseSyntax), ErrorCategory::kParse);
  EXPECT_EQ(category_of(ErrorCode::kCircuitSelfLoop), ErrorCategory::kCircuit);
  EXPECT_EQ(category_of(ErrorCode::kNotPositiveDefinite),
            ErrorCategory::kNumeric);
  EXPECT_EQ(category_of(ErrorCode::kNonFiniteRate), ErrorCategory::kInvariant);
  EXPECT_EQ(category_of(ErrorCode::kCheckpointCorrupt), ErrorCategory::kIo);
  EXPECT_EQ(category_of(ErrorCode::kWatchdogWallClock),
            ErrorCategory::kTimeout);
  EXPECT_EQ(category_of(ErrorCode::kUnknown), ErrorCategory::kInternal);
  EXPECT_EQ(category_of(ErrorCode::kNone), ErrorCategory::kNone);
}

TEST(ErrorTaxonomy, NamesAreStableDottedStrings) {
  // These strings feed sweep status columns and JSON documents; they are
  // part of the output contract, so spell them out.
  EXPECT_STREQ(error_code_name(ErrorCode::kNonFiniteRate),
               "invariant.non_finite_rate");
  EXPECT_STREQ(error_code_name(ErrorCode::kChargeNotConserved),
               "invariant.charge_not_conserved");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotPositiveDefinite),
               "numeric.not_positive_definite");
  EXPECT_STREQ(error_code_name(ErrorCode::kCheckpointCorrupt),
               "io.checkpoint_corrupt");
  EXPECT_STREQ(error_code_name(ErrorCode::kWatchdogWallClock),
               "timeout.wall_clock");
}

TEST(ErrorTaxonomy, SeverityDrivesRetryability) {
  // Recoverable: one run went bad, a re-seeded attempt may succeed.
  EXPECT_TRUE(is_retryable(ErrorCode::kNumericFailure));
  EXPECT_TRUE(is_retryable(ErrorCode::kNonFiniteRate));
  EXPECT_TRUE(is_retryable(ErrorCode::kWatchdogWallClock));
  // Fatal: the input or environment is wrong; retrying cannot help.
  EXPECT_FALSE(is_retryable(ErrorCode::kParseSyntax));
  EXPECT_FALSE(is_retryable(ErrorCode::kCircuitDanglingIsland));
  EXPECT_FALSE(is_retryable(ErrorCode::kCheckpointMismatch));
  EXPECT_FALSE(is_retryable(ErrorCode::kUnknown));
}

TEST(ErrorTaxonomy, ContextChainComposesOutermostFirst) {
  try {
    try {
      throw InvariantViolation(ErrorCode::kNonFiniteRate, "rate is nan");
    } catch (Error& e) {
      e.add_context("bias point 12 (V = 0.004)");
      throw;  // must preserve the concrete type
    }
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFiniteRate);
    EXPECT_EQ(e.message(), "rate is nan");
    ASSERT_EQ(e.context().size(), 1u);
    EXPECT_EQ(std::string(e.what()), "bias point 12 (V = 0.004): rate is nan");
  }
}

TEST(ErrorTaxonomy, ExitCodesMapByCategory) {
  EXPECT_EQ(exit_code_for(ParseError("bad")), kExitParse);
  EXPECT_EQ(exit_code_for(CircuitError("bad")), kExitParse);
  EXPECT_EQ(exit_code_for(NumericError("bad")), kExitNumeric);
  EXPECT_EQ(
      exit_code_for(InvariantViolation(ErrorCode::kFenwickDrift, "drift")),
      kExitNumeric);
  EXPECT_EQ(exit_code_for(IoError("bad")), kExitIo);
  EXPECT_EQ(exit_code_for(TimeoutError("slow")), kExitTimeout);
  EXPECT_EQ(exit_code_for(Error("uncoded")), kExitFailure);
}

// ---- retry determinism contract ------------------------------------------

TEST(RetrySeed, AttemptZeroIsExactlyTheDeriveStreamSeed) {
  // THE contract: a run where nothing fails must be bitwise identical to a
  // run without the retry layer, so attempt 0 cannot re-salt the stream.
  for (std::uint64_t unit = 0; unit < 64; ++unit) {
    EXPECT_EQ(retry_stream_seed(7, unit, 0), derive_stream_seed(7, unit));
  }
}

TEST(RetrySeed, RetriesGetFreshButDeterministicStreams) {
  EXPECT_NE(retry_stream_seed(7, 3, 1), retry_stream_seed(7, 3, 0));
  EXPECT_NE(retry_stream_seed(7, 3, 2), retry_stream_seed(7, 3, 1));
  // Pure function of (base, unit, attempt) — never of thread identity.
  EXPECT_EQ(retry_stream_seed(7, 3, 2), retry_stream_seed(7, 3, 2));
  EXPECT_NE(retry_stream_seed(7, 3, 1), retry_stream_seed(7, 4, 1));
  EXPECT_NE(retry_stream_seed(8, 3, 1), retry_stream_seed(7, 3, 1));
}

TEST(RetryPolicy_, BackoffDoublesAndCaps) {
  RetryPolicy p;
  p.backoff_base_seconds = 0.1;
  p.backoff_cap_seconds = 0.35;
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(p, 1), 0.1);
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(p, 2), 0.2);
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(p, 3), 0.35);  // capped
  p.backoff_base_seconds = 0.0;  // the default: in-process retries never sleep
  EXPECT_DOUBLE_EQ(retry_backoff_seconds(p, 5), 0.0);
}

TEST(RetryPolicy_, ShouldRetryRespectsStrictAttemptsAndSeverity) {
  RetryPolicy p;
  p.max_attempts = 3;
  EXPECT_TRUE(p.should_retry(ErrorCode::kNonFiniteRate, 1));
  EXPECT_TRUE(p.should_retry(ErrorCode::kNonFiniteRate, 2));
  EXPECT_FALSE(p.should_retry(ErrorCode::kNonFiniteRate, 3));  // budget spent
  EXPECT_FALSE(p.should_retry(ErrorCode::kParseSyntax, 1));    // fatal class
  p.strict = true;
  EXPECT_FALSE(p.should_retry(ErrorCode::kNonFiniteRate, 1));
}

// ---- fault injector matching ---------------------------------------------

TEST(FaultInjectorTest, MatchesUnitAttemptAndEvent) {
  FaultPlan plan;
  FaultSpec f;
  f.kind = FaultKind::kNanRate;
  f.unit = 3;
  f.attempt = 0;
  f.at_event = 100;
  plan.faults.push_back(f);

  const FaultInjector wrong_unit(&plan, 2, 0);
  EXPECT_EQ(wrong_unit.next(100), nullptr);
  const FaultInjector right(&plan, 3, 0);
  EXPECT_EQ(right.next(99), nullptr);
  ASSERT_NE(right.next(100), nullptr);
  EXPECT_EQ(right.next(100)->kind, FaultKind::kNanRate);
  EXPECT_EQ(right.next(101), nullptr);  // non-sticky: exactly one event
  // The retry rebind: the same fault must not re-fire on attempt 1.
  EXPECT_EQ(right.for_attempt(1).next(100), nullptr);
  EXPECT_EQ(wrong_unit.for_unit(3, 0).next(100), right.next(100));
}

TEST(FaultInjectorTest, StickyFaultsKeepFiring) {
  FaultPlan plan;
  FaultSpec f;
  f.kind = FaultKind::kStallClock;
  f.at_event = 10;  // any unit, any attempt
  f.sticky = true;
  plan.faults.push_back(f);
  const FaultInjector inj(&plan, 0, 0);
  EXPECT_EQ(inj.next(9), nullptr);
  EXPECT_NE(inj.next(10), nullptr);
  EXPECT_NE(inj.next(10'000), nullptr);
}

TEST(FaultInjectorTest, EmptyPlanIsNeverArmed) {
  FaultPlan plan;
  EXPECT_FALSE(FaultInjector(&plan, 0, 0).armed());
  EXPECT_FALSE(FaultInjector(nullptr, 0, 0).armed());
  EXPECT_FALSE(FaultInjector().armed());
}

// ---- fixture: the paper's SET --------------------------------------------

struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture() {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(0.02));
    c.set_source(drn, Waveform::dc(-0.02));
    c.set_source(gate, Waveform::dc(0.0));
  }
};

EngineOptions faulty_opts(const FaultPlan* plan,
                          std::uint64_t audit_interval = 16) {
  EngineOptions o;
  o.temperature = 5.0;
  o.seed = 11;
  o.audit.interval = audit_interval;
  o.fault = FaultInjector(plan, 0, 0);
  return o;
}

FaultSpec fault(FaultKind kind, std::uint64_t at_event) {
  FaultSpec f;
  f.kind = kind;
  f.at_event = at_event;
  return f;
}

/// Runs until the engine throws and returns the caught error code.
template <typename Exn>
ErrorCode run_expecting(Engine& engine, std::uint64_t budget = 100'000) {
  try {
    engine.run_events(budget);
  } catch (const Exn& e) {
    return e.code();
  }
  ADD_FAILURE() << "fault was never detected within " << budget << " events";
  return ErrorCode::kNone;
}

// ---- every injected fault class must surface with the right code ----------

TEST(FaultDetection, NanRateIsRejectedAtTheFenwickSetter) {
  // The corruption attempt itself trips the guarded setter (satellite:
  // FenwickTree::set validates weights) — detection is immediate, before
  // the poisoned total can bias a single sampling decision.
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kNanRate, 50));
  Engine engine(fx.c, faulty_opts(&plan));
  EXPECT_EQ(run_expecting<InvariantViolation>(engine),
            ErrorCode::kNonFiniteRate);
}

TEST(FaultDetection, InfRateIsRejectedAtTheFenwickSetter) {
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kInfRate, 50));
  Engine engine(fx.c, faulty_opts(&plan));
  EXPECT_EQ(run_expecting<InvariantViolation>(engine),
            ErrorCode::kNonFiniteRate);
}

TEST(FaultDetection, NegativeRateIsRejectedAtTheFenwickSetter) {
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kNegativeRate, 50));
  Engine engine(fx.c, faulty_opts(&plan));
  EXPECT_EQ(run_expecting<InvariantViolation>(engine),
            ErrorCode::kNegativeRate);
}

TEST(FaultDetection, NanPotentialNeverSurvivesAnEvent) {
  // In this single-island device every event recomputes rates from the
  // poisoned potential, so the NaN is caught the moment it flows anywhere:
  // either as a non-finite rate at the guarded Fenwick setter or as a
  // non-finite potential at the audit — both within the same event.
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kNanPotential, 50));
  Engine engine(fx.c, faulty_opts(&plan, /*audit_interval=*/16));
  const ErrorCode code = run_expecting<InvariantViolation>(engine);
  EXPECT_TRUE(code == ErrorCode::kNonFiniteRate ||
              code == ErrorCode::kNonFinitePotential)
      << error_code_name(code);
}

TEST(InvariantAuditorTest, DetectsNonFinitePotentialDirectly) {
  // The audit-side detection path, exercised on a hand-built view: a NaN
  // potential that has NOT yet flowed into any rate (the adaptive solver
  // deliberately leaves blockaded islands un-recomputed for long windows,
  // which is exactly when only the audit can see it).
  FenwickTree rates(2);
  rates.set(0, 1.0);
  rates.set(1, 2.0);
  const double island_v[] = {0.001, std::numeric_limits<double>::quiet_NaN()};
  AuditView view;
  view.rates = &rates;
  view.island_v = island_v;
  view.n_islands = 2;
  view.events = 64;
  InvariantAuditor auditor{AuditOptions{}};
  try {
    auditor.audit(view);
    FAIL() << "NaN potential passed the audit";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFinitePotential);
  }
  ASSERT_EQ(auditor.report().issues.size(), 1u);
  EXPECT_EQ(auditor.report().issues[0].code, ErrorCode::kNonFinitePotential);
  EXPECT_EQ(auditor.report().issues[0].at_event, 64u);
  EXPECT_EQ(auditor.report().audits_run, 1u);
}

TEST(FaultDetection, CorruptChargeTripsChargeConservation) {
  // An electron added with no matching junction transfer must be flagged by
  // the transferred-charge balance check at the next audit.
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kCorruptCharge, 50));
  Engine engine(fx.c, faulty_opts(&plan, /*audit_interval=*/16));
  EXPECT_EQ(run_expecting<InvariantViolation>(engine),
            ErrorCode::kChargeNotConserved);
}

TEST(FaultDetection, CorruptDeltaWIsCaughtByTheAuditInAdaptiveMode) {
  // The batch-kernel path stores per-channel ΔW; in adaptive mode a stale
  // entry is only ever refreshed when its junction flags, and a NaN there
  // DISABLES the flag test (NaN comparisons are false) — the classic
  // self-hiding corruption. Give the circuit a deeply blockaded island that
  // is electrically isolated from the active SET: its ΔW slots are never
  // rewritten by events, so only the auditor's finiteness check over the
  // stored ΔW array can see the fault.
  SetFixture fx;
  const NodeId lead = fx.c.add_external("blk_lead");
  const NodeId blk = fx.c.add_island("blk_island");
  fx.c.add_junction(lead, blk, 1e6, 1e-18);   // junction 2 -> channels 4,5
  fx.c.add_junction(blk, lead, 1e6, 1e-18);   // junction 3 -> channels 6,7
  fx.c.add_capacitor(blk, Circuit::kGroundNode, 1e-18);
  fx.c.set_source(lead, Waveform::dc(0.0));

  FaultPlan plan;
  FaultSpec f = fault(FaultKind::kCorruptDeltaW, 50);
  f.index = 4;  // a channel of blockaded junction 2
  plan.faults.push_back(f);
  EngineOptions o = faulty_opts(&plan, /*audit_interval=*/1);
  ASSERT_TRUE(o.adaptive.enabled);
  Engine engine(fx.c, o);
  EXPECT_EQ(run_expecting<InvariantViolation>(engine),
            ErrorCode::kNonFiniteRate);
  const IntegrityReport& rep = engine.integrity_report();
  ASSERT_EQ(rep.issues.size(), 1u);
  EXPECT_NE(rep.issues[0].detail.find("delta_w"), std::string::npos)
      << rep.issues[0].detail;
}

TEST(FaultDetection, CorruptDeltaWSelfHealsInNonAdaptiveMode) {
  // The non-adaptive solver re-derives the whole ΔW store from the exact
  // potential cache inside every event, after the injection point — the
  // corruption is overwritten before any kernel or audit reads it. This is
  // the documented semantics, and it doubles as coverage for the auditor's
  // synced ΔW-vs-recompute drift check running clean on every audit.
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kCorruptDeltaW, 50));
  EngineOptions o = faulty_opts(&plan, /*audit_interval=*/1);
  o.adaptive.enabled = false;
  Engine engine(fx.c, o);
  engine.run_events(2000);
  EXPECT_TRUE(engine.integrity_report().ok());
  EXPECT_GE(engine.integrity_report().audits_run, 2000u);
}

TEST(InvariantAuditorTest, DetectsDeltaWDriftWhenSynced) {
  // Direct audit-side test of the synced recompute check: one junction
  // between island slot 0 and external slot 1.
  FenwickTree rates(2);
  rates.set(0, 1.0);
  rates.set(1, 2.0);
  const double island_v[] = {0.001};
  const std::uint32_t slot_a[] = {0};
  const std::uint32_t slot_b[] = {1};
  const double node_v[] = {0.001, 0.02};
  const double u[] = {1e-22};
  const double dv = node_v[1] - node_v[0];
  double delta_w[2] = {-kElementaryCharge * dv + u[0],
                       kElementaryCharge * dv + u[0]};

  AuditView view;
  view.rates = &rates;
  view.island_v = island_v;
  view.n_islands = 1;
  view.n_junctions = 1;
  view.slot_a = slot_a;
  view.slot_b = slot_b;
  view.delta_w = delta_w;
  view.n_delta_w = 2;
  view.node_v = node_v;
  view.charging_u = u;
  view.delta_w_synced = true;
  view.events = 32;

  InvariantAuditor auditor{AuditOptions{}};
  auditor.audit(view);  // consistent store passes

  delta_w[0] *= 1.0 + 1e-6;  // well past the 1e-9 relative tolerance
  try {
    auditor.audit(view);
    FAIL() << "drifted delta_w passed the synced audit";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeltaWDrift);
    EXPECT_STREQ(error_code_name(e.code()), "invariant.delta_w_drift");
  }

  // The same drifted store is legal when the engine marks it stale-by-design
  // (adaptive mode): only finiteness is enforced then.
  view.delta_w_synced = false;
  InvariantAuditor lax{AuditOptions{}};
  lax.audit(view);

  // ...but a NaN is never legal, synced or not.
  delta_w[1] = std::numeric_limits<double>::quiet_NaN();
  try {
    lax.audit(view);
    FAIL() << "NaN delta_w passed the unsynced audit";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFiniteRate);
  }
}

TEST(FaultDetection, StalledClockTripsTheNoProgressWatchdog) {
  SetFixture fx;
  FaultPlan plan;
  plan.faults.push_back(fault(FaultKind::kStallClock, 10));
  EngineOptions o = faulty_opts(&plan, /*audit_interval=*/64);
  o.audit.no_progress_events = 256;
  Engine engine(fx.c, o);
  EXPECT_EQ(run_expecting<InvariantViolation>(engine), ErrorCode::kNoProgress);
}

TEST(FaultDetection, SleepTripsTheWallClockWatchdog) {
  SetFixture fx;
  FaultPlan plan;
  FaultSpec f = fault(FaultKind::kSleep, 8);
  f.millis = 50;
  plan.faults.push_back(f);
  EngineOptions o = faulty_opts(&plan, /*audit_interval=*/16);
  o.audit.watchdog_seconds = 0.01;
  Engine engine(fx.c, o);
  EXPECT_EQ(run_expecting<TimeoutError>(engine),
            ErrorCode::kWatchdogWallClock);
}

TEST(FaultDetection, CleanRunAuditsAndStaysSilent) {
  SetFixture fx;
  Engine engine(fx.c, faulty_opts(nullptr, /*audit_interval=*/16));
  engine.run_events(2000);
  const IntegrityReport& rep = engine.integrity_report();
  EXPECT_TRUE(rep.ok());
  EXPECT_GE(rep.audits_run, 2000u / 16u);
  EXPECT_GT(rep.last_audit_event, 0u);
}

TEST(FaultDetection, DisabledAuditRunsNoChecks) {
  SetFixture fx;
  EngineOptions o = faulty_opts(nullptr);
  o.audit.enabled = false;
  Engine engine(fx.c, o);
  engine.run_events(2000);
  EXPECT_EQ(engine.integrity_report().audits_run, 0u);
}

TEST(NumericGuard, SingularCapacitanceMatrixThrowsCoded) {
  // Two islands coupled only to each other: every node passes the dangling
  // check, but C_II is exactly singular — the factorization must refuse it
  // with a coded NumericError naming the electrostatic model, not crash in
  // the solver or return garbage potentials.
  Circuit c;
  const NodeId a = c.add_island("a");
  const NodeId b = c.add_island("b");
  c.add_junction(a, b, 1e6, 1e-18);
  EngineOptions o;
  o.temperature = 5.0;
  try {
    Engine engine(c, o);
    FAIL() << "singular C_II was accepted";
  } catch (const NumericError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotPositiveDefinite);
    EXPECT_NE(std::string(e.what()).find("electrostatic model"),
              std::string::npos);
  }
}

// ---- checkpoint salvage ---------------------------------------------------

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(CheckpointSalvage, TruncatedMidWriteKeepsTheValidPrefix) {
  TempFile tmp("/tmp/semsim_guard_salvage.bin");
  {
    RunCheckpoint cp(tmp.path, /*fingerprint=*/9, /*unit_count=*/4);
    cp.record(0, {1, 2, 3});
    cp.record(1, {4, 5});
    cp.record(2, {6, 7, 8, 9});
  }
  // Chop into the middle of the last record, as a crash mid-write would.
  std::vector<std::uint8_t> b = read_bytes(tmp.path);
  b.resize(b.size() - 5);
  write_bytes(tmp.path, b);

  // Default: corruption is loud (pipelines depend on this), with the coded
  // IoError the CLI maps to its distinct exit code.
  try {
    RunCheckpoint cp(tmp.path, 9, 4);
    FAIL() << "truncated checkpoint was accepted without salvage";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt);
  }

  // Salvage: the intact record prefix survives, the torn tail is dropped
  // and will simply be recomputed.
  RunCheckpoint cp(tmp.path, 9, 4, /*require_existing=*/false,
                   /*salvage=*/true);
  EXPECT_TRUE(cp.has(0));
  EXPECT_TRUE(cp.has(1));
  EXPECT_FALSE(cp.has(2));
  EXPECT_EQ(cp.completed(), 2u);
  EXPECT_GE(cp.salvaged_dropped(), 1u);
  EXPECT_EQ(cp.payload(0), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(CheckpointSalvage, HeaderDamageIsFatalEvenWithSalvage) {
  // Salvage never guesses at the run identity: a damaged header could make
  // another run's records look valid.
  TempFile tmp("/tmp/semsim_guard_salvage_hdr.bin");
  {
    RunCheckpoint cp(tmp.path, 9, 2);
    cp.record(0, {1});
  }
  std::vector<std::uint8_t> b = read_bytes(tmp.path);
  b[0] ^= 0xFF;  // magic
  write_bytes(tmp.path, b);
  EXPECT_THROW(RunCheckpoint(tmp.path, 9, 2, false, /*salvage=*/true), IoError);
}

TEST(CheckpointSalvage, ChecksumFailureDropsFromTheBadRecordOn) {
  TempFile tmp("/tmp/semsim_guard_salvage_sum.bin");
  {
    RunCheckpoint cp(tmp.path, 9, 3);
    cp.record(0, {10, 20, 30});
    cp.record(1, {40});
    cp.record(2, {50});
  }
  std::vector<std::uint8_t> b = read_bytes(tmp.path);
  b[40 + 16] ^= 0x01;  // first payload byte of record 0 (header is 40 bytes)
  write_bytes(tmp.path, b);
  RunCheckpoint cp(tmp.path, 9, 3, false, /*salvage=*/true);
  EXPECT_EQ(cp.completed(), 0u);
  EXPECT_EQ(cp.salvaged_dropped(), 3u);
}

// ---- fault-isolated sweeps ------------------------------------------------

IvSweepConfig small_sweep(const SetFixture& fx) {
  IvSweepConfig cfg;
  cfg.swept = fx.src;
  cfg.mirror = fx.drn;
  cfg.from = 0.002;
  cfg.to = 0.012;
  cfg.step = 0.002;
  cfg.probes = {{0, 1.0}, {1, 1.0}};
  cfg.measure = CurrentMeasureConfig{200, 1200, 4};
  return cfg;
}

/// A fault that fires on attempts [first, last] of `unit`, so a cell can be
/// made to fail attempt 0 only (retry succeeds) or every permitted attempt
/// (the point degrades to failed:<code>).
void poison_unit(FaultPlan& plan, std::uint64_t unit, std::uint32_t first,
                 std::uint32_t last, std::uint64_t at_event = 300) {
  for (std::uint32_t a = first; a <= last; ++a) {
    FaultSpec f = fault(FaultKind::kNanRate, at_event);
    f.unit = unit;
    f.attempt = a;
    plan.faults.push_back(f);
  }
}

std::vector<IvPoint> sweep_with_plan(const FaultPlan* plan, unsigned threads,
                                     bool strict = false,
                                     IntegrityReport* integrity = nullptr) {
  SetFixture fx;
  IvSweepConfig cfg = small_sweep(fx);
  cfg.retry.strict = strict;
  EngineOptions o;
  o.temperature = 5.0;
  o.fault = FaultInjector(plan, 0, 0);
  ParallelSweepConfig par;
  par.base_seed = 21;
  const ParallelExecutor exec(threads);
  return run_iv_sweep(fx.c, o, cfg, exec, par, nullptr, {}, integrity);
}

void expect_bitwise_equal(const std::vector<IvPoint>& a,
                          const std::vector<IvPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bias, b[i].bias) << "point " << i;
    // NaN-safe bitwise comparison for the failed rows.
    EXPECT_EQ(std::memcmp(&a[i].current, &b[i].current, sizeof(double)), 0)
        << "point " << i;
    EXPECT_EQ(std::memcmp(&a[i].stderr_mean, &b[i].stderr_mean,
                          sizeof(double)),
              0)
        << "point " << i;
    EXPECT_EQ(a[i].events, b[i].events) << "point " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "point " << i;
    EXPECT_EQ(a[i].error, b[i].error) << "point " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "point " << i;
  }
}

TEST(SweepFaultIsolation, RetryThenSucceedIsDeterministic) {
  FaultPlan plan;
  poison_unit(plan, /*unit=*/1, /*first=*/0, /*last=*/0);  // attempt 0 only
  const std::vector<IvPoint> t1 = sweep_with_plan(&plan, 1);
  const std::vector<IvPoint> t8 = sweep_with_plan(&plan, 8);
  ASSERT_EQ(t1.size(), 6u);

  EXPECT_EQ(t1[1].status, PointStatus::kRetried);
  EXPECT_EQ(t1[1].error, ErrorCode::kNonFiniteRate);
  EXPECT_EQ(t1[1].attempts, 2u);
  EXPECT_TRUE(std::isfinite(t1[1].current));
  EXPECT_EQ(point_status_label(t1[1]), "retried");
  for (std::size_t i = 0; i < t1.size(); ++i) {
    if (i == 1) continue;
    EXPECT_EQ(t1[i].status, PointStatus::kOk) << "point " << i;
    EXPECT_EQ(t1[i].attempts, 1u) << "point " << i;
    EXPECT_EQ(point_status_label(t1[i]), "ok");
  }
  // The fault-retry-succeed sequence replays bitwise at any thread count.
  expect_bitwise_equal(t1, t8);
}

TEST(SweepFaultIsolation, PoisonedPointDegradesTheRestSurvives) {
  FaultPlan plan;
  poison_unit(plan, /*unit=*/2, /*first=*/0, /*last=*/2);  // every attempt
  IntegrityReport integrity;
  const std::vector<IvPoint> bad = sweep_with_plan(&plan, 4, false, &integrity);
  const std::vector<IvPoint> clean = sweep_with_plan(nullptr, 4);
  ASSERT_EQ(bad.size(), 6u);

  // Exactly one failed row, carrying NaN and the coded label.
  EXPECT_EQ(bad[2].status, PointStatus::kFailed);
  EXPECT_EQ(bad[2].error, ErrorCode::kNonFiniteRate);
  EXPECT_EQ(bad[2].attempts, 3u);
  EXPECT_TRUE(std::isnan(bad[2].current));
  EXPECT_TRUE(std::isnan(bad[2].stderr_mean));
  EXPECT_EQ(point_status_label(bad[2]), "failed:invariant.non_finite_rate");

  // Fault isolation means ISOLATION: every other point is bitwise identical
  // to the run with no fault plan at all.
  std::size_t failed = 0;
  for (std::size_t i = 0; i < bad.size(); ++i) {
    if (bad[i].status == PointStatus::kFailed) {
      ++failed;
      continue;
    }
    EXPECT_EQ(bad[i].status, PointStatus::kOk);
    EXPECT_EQ(bad[i].current, clean[i].current) << "point " << i;
    EXPECT_EQ(bad[i].stderr_mean, clean[i].stderr_mean) << "point " << i;
  }
  EXPECT_EQ(failed, 1u);
}

TEST(SweepFaultIsolation, StrictModeAbortsWithThePointInContext) {
  FaultPlan plan;
  poison_unit(plan, /*unit=*/2, /*first=*/0, /*last=*/2);
  try {
    sweep_with_plan(&plan, 4, /*strict=*/true);
    FAIL() << "strict sweep swallowed the fault";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFiniteRate);
    EXPECT_NE(std::string(e.what()).find("bias point 2"), std::string::npos)
        << e.what();
  }
}

TEST(SweepFaultIsolation, SerialSweepRetriesOnItsOwnEngine) {
  SetFixture fx;
  FaultPlan plan;
  // Any unit (the serial engine is unit 0 by default), attempt 0 only.
  FaultSpec f = fault(FaultKind::kNanRate, 300);
  f.attempt = 0;
  plan.faults.push_back(f);
  EngineOptions o;
  o.temperature = 5.0;
  o.seed = 11;
  o.fault = FaultInjector(&plan, 0, 0);
  Engine engine(fx.c, o);
  const std::vector<IvPoint> pts = run_iv_sweep(engine, small_sweep(fx));
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0].status, PointStatus::kRetried);
  EXPECT_EQ(pts[0].attempts, 2u);
  EXPECT_TRUE(std::isfinite(pts[0].current));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].status, PointStatus::kOk) << "point " << i;
  }
}

// ---- fault-isolated stability maps ---------------------------------------

TEST(MapFaultIsolation, PoisonedCellDegradesAndMapsStayIdentical) {
  SetFixture fx;
  StabilityMapConfig cfg;
  cfg.bias_node = fx.src;
  cfg.mirror = fx.drn;
  cfg.gate_node = fx.gate;
  cfg.bias_values = {0.005, 0.01, 0.015};
  cfg.gate_values = {0.0, 0.02, 0.04};
  cfg.probes = {{0, 1.0}, {1, 1.0}};
  cfg.measure = CurrentMeasureConfig{200, 1200, 4};

  FaultPlan plan;
  poison_unit(plan, /*unit=*/1, /*first=*/0, /*last=*/2);  // gate row 1
  EngineOptions o;
  o.temperature = 5.0;
  o.fault = FaultInjector(&plan, 0, 0);
  ParallelSweepConfig par;
  par.base_seed = 13;

  std::vector<std::vector<std::vector<double>>> maps;
  std::vector<StabilityMapReport> reports(2);
  std::size_t k = 0;
  for (const unsigned threads : {1u, 4u}) {
    const ParallelExecutor exec(threads);
    maps.push_back(run_stability_map(fx.c, o, cfg, exec, par, nullptr,
                                     &reports[k++]));
  }

  // The poisoned cell is row 1's first cell (the fault fires at event 300,
  // inside the first cell's measurement on every permitted attempt).
  ASSERT_EQ(reports[0].degraded.size(), 1u);
  EXPECT_EQ(reports[0].degraded[0].gate, 1u);
  EXPECT_EQ(reports[0].degraded[0].bias, 0u);
  EXPECT_EQ(reports[0].degraded[0].status, PointStatus::kFailed);
  EXPECT_EQ(reports[0].degraded[0].error, ErrorCode::kNonFiniteRate);
  EXPECT_TRUE(std::isnan(maps[0][1][0]));

  // Thread-count independence holds for the degraded map too.
  for (std::size_t g = 0; g < maps[0].size(); ++g) {
    for (std::size_t b = 0; b < maps[0][g].size(); ++b) {
      EXPECT_EQ(std::memcmp(&maps[0][g][b], &maps[1][g][b], sizeof(double)),
                0)
          << "g=" << g << " b=" << b;
    }
  }
  ASSERT_EQ(reports[1].degraded.size(), 1u);
  EXPECT_EQ(reports[1].degraded[0].error, reports[0].degraded[0].error);

  // And the clean rows match a run with no fault plan armed.
  EngineOptions clean_o;
  clean_o.temperature = 5.0;
  const ParallelExecutor exec(2);
  const auto clean = run_stability_map(fx.c, clean_o, cfg, exec, par);
  for (std::size_t g = 0; g < clean.size(); ++g) {
    if (g == 1) continue;
    for (std::size_t b = 0; b < clean[g].size(); ++b) {
      EXPECT_EQ(maps[0][g][b], clean[g][b]) << "g=" << g << " b=" << b;
    }
  }
}

// ---- fault-isolated repeats (driver + JSON surface) ----------------------

constexpr char kRepeatsInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
temp 5
record 1 2
jumps 1500 6
)";

TEST(RepeatFaultIsolation, FailedRepeatIsExcludedNotFatal) {
  const SimulationInput input = parse_simulation_input(kRepeatsInput);
  FaultPlan plan;
  poison_unit(plan, /*unit=*/2, /*first=*/0, /*last=*/2, /*at_event=*/500);
  DriverOptions opt;
  opt.seed = 5;
  opt.threads = 2;
  opt.fault_plan = &plan;
  const DriverResult r = run_simulation(input, opt);

  ASSERT_TRUE(r.degraded());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].unit, 2u);
  EXPECT_EQ(r.failures[0].code, ErrorCode::kNonFiniteRate);
  EXPECT_EQ(r.failures[0].attempts, 3u);
  ASSERT_TRUE(r.current.has_value());
  EXPECT_TRUE(std::isfinite(r.current->mean));
}

TEST(RepeatFaultIsolation, RetriedRepeatKeepsTheFullEstimate) {
  const SimulationInput input = parse_simulation_input(kRepeatsInput);
  FaultPlan plan;
  poison_unit(plan, /*unit=*/2, /*first=*/0, /*last=*/0, /*at_event=*/500);
  DriverOptions opt;
  opt.seed = 5;
  opt.threads = 2;
  opt.fault_plan = &plan;
  const DriverResult r = run_simulation(input, opt);
  EXPECT_FALSE(r.degraded());
  ASSERT_TRUE(r.current.has_value());
  EXPECT_TRUE(std::isfinite(r.current->mean));
}

TEST(RepeatFaultIsolation, StrictModeRethrowsWithTheRepeatInContext) {
  const SimulationInput input = parse_simulation_input(kRepeatsInput);
  FaultPlan plan;
  poison_unit(plan, /*unit=*/2, /*first=*/0, /*last=*/2, /*at_event=*/500);
  DriverOptions opt;
  opt.seed = 5;
  opt.threads = 2;
  opt.fault_plan = &plan;
  opt.retry.strict = true;
  try {
    run_simulation(input, opt);
    FAIL() << "strict run swallowed the fault";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonFiniteRate);
    EXPECT_NE(std::string(e.what()).find("repeat 2"), std::string::npos)
        << e.what();
  }
}

TEST(RunResultJson, CarriesStatusIntegrityAndFailures) {
  RunRequest req;
  req.input = parse_simulation_input(kRepeatsInput);
  req.seed = 5;
  req.threads = 2;
  FaultPlan plan;
  poison_unit(plan, /*unit=*/2, /*first=*/0, /*last=*/2, /*at_event=*/500);
  req.fault_plan = &plan;
  const RunResult res = run(req);
  const JsonValue doc = JsonValue::parse(res.to_json());

  EXPECT_EQ(doc.at("schema").as_string(), "semsim.run_result/v3");
  EXPECT_TRUE(doc.at("degraded").as_bool());
  const JsonValue& failures = doc.at("failures");
  ASSERT_EQ(failures.items().size(), 1u);
  EXPECT_EQ(failures.items()[0].at("code").as_string(),
            "invariant.non_finite_rate");
  EXPECT_EQ(failures.items()[0].at("unit").as_number(), 2.0);
  const JsonValue& integrity = doc.at("integrity");
  EXPECT_GE(integrity.at("audits_run").as_number(), 0.0);
  EXPECT_TRUE(integrity.at("issues").is_array());

  // A clean run of the same input is explicitly not degraded.
  req.fault_plan = nullptr;
  const JsonValue clean = JsonValue::parse(run(req).to_json());
  EXPECT_FALSE(clean.at("degraded").as_bool());
  EXPECT_TRUE(clean.at("failures").items().empty());
}

}  // namespace
}  // namespace semsim
