// Second tranche of engine tests: statistical-mechanics properties,
// superconducting channel bookkeeping, observers, shared models, and the
// rate-calculator binding.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analysis/current.h"
#include "base/constants.h"
#include "core/engine.h"
#include "core/rate_calculator.h"
#include "physics/cooper_pair.h"
#include "physics/rates.h"

namespace semsim {
namespace {

constexpr double kE = kElementaryCharge;

struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture(double v_src = 0.0, double v_drn = 0.0, double v_gate = 0.0) {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_src));
    c.set_source(drn, Waveform::dc(v_drn));
    c.set_source(gate, Waveform::dc(v_gate));
  }
};

EngineOptions opts(double t, std::uint64_t seed = 1) {
  EngineOptions o;
  o.temperature = t;
  o.seed = seed;
  return o;
}

// ---- statistical mechanics -----------------------------------------------------

TEST(EngineStatMech, EquilibriumOccupationIsBoltzmann) {
  // Zero bias, T > 0: the island charge distribution must follow
  // P(n)/P(0) = exp(-dF(n)/kT) with dF(n) = n^2 e^2 / 2 C_sigma.
  const double temp = 40.0;  // hot enough that n = +-1 is well populated
  SetFixture f;
  Engine e(f.c, opts(temp, 31));
  std::map<long, double> occupancy;  // time-weighted
  e.run_events(5000);
  Event ev;
  long state = e.electron_count(f.island);
  for (int i = 0; i < 200000; ++i) {
    ASSERT_TRUE(e.step(&ev));
    // The waiting time dt was spent in the PRE-event state.
    occupancy[state] += ev.dt;
    state = e.electron_count(f.island);
  }
  const double c_sigma = 5e-18;
  const double df1 = kE * kE / (2.0 * c_sigma);  // F(1) - F(0)
  const double expected = std::exp(-df1 / (kBoltzmann * temp));
  ASSERT_GT(occupancy[0], 0.0);
  ASSERT_GT(occupancy[1], 0.0);
  const double p1 = occupancy[1] / occupancy[0];
  const double pm1 = occupancy[-1] / occupancy[0];
  EXPECT_NEAR(p1, expected, 0.10 * expected);
  EXPECT_NEAR(pm1, expected, 0.10 * expected);
}

TEST(EngineStatMech, GateShiftsEquilibriumOccupation) {
  // At the degeneracy gate voltage, states n = 0 and n = 1 are equally
  // occupied at any temperature.
  // Degeneracy: gate-induced island potential 0.6 Vg equals e/2 C_sigma.
  const double vg_degeneracy = kE / (2.0 * 5e-18) / 0.6;
  SetFixture f(0.0, 0.0, vg_degeneracy);
  Engine e(f.c, opts(2.0, 33));
  std::map<long, double> occupancy;
  e.run_events(2000);
  Event ev;
  long state = e.electron_count(f.island);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(e.step(&ev));
    occupancy[state] += ev.dt;
    state = e.electron_count(f.island);
  }
  ASSERT_GT(occupancy[0], 0.0);
  ASSERT_GT(occupancy[1], 0.0);
  EXPECT_NEAR(occupancy[1] / occupancy[0], 1.0, 0.1);
}

// ---- observers and accessors ------------------------------------------------------

TEST(EngineObservers, EventCallbackSeesEveryEvent) {
  SetFixture f(0.02, -0.02, 0.0);
  Engine e(f.c, opts(0.0, 35));
  std::uint64_t called = 0;
  double last_time = -1.0;
  e.set_event_callback([&](const Engine& eng, const Event& ev) {
    ++called;
    EXPECT_GT(ev.time, last_time);
    EXPECT_EQ(ev.time, eng.time());
    last_time = ev.time;
  });
  e.run_events(500);
  EXPECT_EQ(called, 500u);
}

TEST(EngineObservers, JunctionRateAccessorMatchesOrthodox) {
  SetFixture f(0.02, -0.02, 0.0);
  Engine e(f.c, opts(0.0, 37));
  // Junction 1 = (island, drn), backward = electron drn -> island; compare
  // with the orthodox formula at the current (neutral) state.
  const double v_isl = e.node_voltage(f.island);
  const double u = kE * kE / (2.0 * 5e-18);
  const double dw = -kE * (v_isl - (-0.02)) + u;
  EXPECT_NEAR(e.junction_rate(1, false), orthodox_rate(dw, 1e6, 0.0),
              1e-4 * orthodox_rate(dw, 1e6, 0.0));
}

TEST(EngineFastRates, RatesMatchExactWithinDocumentedBound) {
  // --fast-rates swaps the thermal kernel; every channel rate of a freshly
  // built engine must sit within the documented 1e-12 relative bound of the
  // exact-mode engine, and the fast engine must actually run.
  SetFixture fe(0.02, -0.02, 0.0), ff(0.02, -0.02, 0.0);
  EngineOptions exact_o = opts(5.0, 41);
  EngineOptions fast_o = exact_o;
  fast_o.fast_rates = true;
  Engine exact(fe.c, exact_o);
  Engine fast(ff.c, fast_o);
  for (std::size_t j = 0; j < fe.c.junction_count(); ++j) {
    for (bool fw : {true, false}) {
      const double a = exact.junction_rate(j, fw);
      const double b = fast.junction_rate(j, fw);
      EXPECT_LE(std::abs(b - a), 1e-12 * std::abs(a) + 1e-300)
          << "junction " << j << (fw ? " fw" : " bw");
    }
  }
  EXPECT_EQ(fast.run_events(5000), 5000u);
  EXPECT_TRUE(fast.integrity_report().ok());
}

TEST(EngineFastRates, ZeroTemperatureIsBitwiseIdenticalToExact) {
  // At T = 0 the fast kernel never touches the polynomial: trajectories must
  // be bitwise identical, event for event.
  SetFixture fe(0.02, -0.02, 0.0), ff(0.02, -0.02, 0.0);
  EngineOptions exact_o = opts(0.0, 43);
  EngineOptions fast_o = exact_o;
  fast_o.fast_rates = true;
  Engine exact(fe.c, exact_o);
  Engine fast(ff.c, fast_o);
  Event ea, eb;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(exact.step(&ea));
    ASSERT_TRUE(fast.step(&eb));
    ASSERT_EQ(ea.index, eb.index) << "event " << i;
    ASSERT_EQ(ea.time, eb.time) << "event " << i;
  }
}

TEST(EngineObservers, SetElectronCountsMovesState) {
  SetFixture f;
  Engine e(f.c, opts(0.0));
  EXPECT_NEAR(e.node_voltage(f.island), 0.0, 1e-12);
  e.set_electron_counts({{f.island, -3}});
  EXPECT_EQ(e.electron_count(f.island), -3);
  EXPECT_NEAR(e.node_voltage(f.island), 3.0 * kE / 5e-18, 1e-6);
  e.reset(1);
  EXPECT_EQ(e.electron_count(f.island), 0);
}

TEST(EngineObservers, SharedModelGivesIdenticalTrajectories) {
  SetFixture f1(0.02, -0.02, 0.0), f2(0.02, -0.02, 0.0);
  auto model = std::make_shared<const ElectrostaticModel>(f1.c);
  Engine a(f1.c, opts(1.0, 41), model);
  Engine b(f2.c, opts(1.0, 41));  // private model, same physics
  for (int i = 0; i < 300; ++i) {
    Event ea, eb;
    ASSERT_TRUE(a.step(&ea));
    ASSERT_TRUE(b.step(&eb));
    ASSERT_DOUBLE_EQ(ea.time, eb.time);
    ASSERT_EQ(ea.from, eb.from);
    ASSERT_EQ(ea.to, eb.to);
  }
}

TEST(EngineObservers, StatsCountersAreConsistent) {
  SetFixture f(0.02, -0.02, 0.0);
  Engine e(f.c, opts(1.0, 43));
  e.run_events(2000);
  const SolverStats s = e.stats();
  EXPECT_EQ(s.events, 2000u);
  EXPECT_GT(s.rate_evaluations, 0u);
  EXPECT_GT(s.potential_node_updates, 0u);
  EXPECT_GE(s.junctions_tested, s.junctions_flagged);
}

// ---- superconducting channels --------------------------------------------------------

TEST(EngineSc2, CooperPairEventsCarryTwoElectrons) {
  // Bias the SSET at the CP resonance so pair events dominate; every event
  // must move charge in units the bookkeeping can absorb exactly.
  SetFixture f(0.0, 0.0, 0.0);
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  EngineOptions o = opts(0.1, 47);
  Engine e(f.c, o);
  Event ev;
  int cp_seen = 0;
  for (int i = 0; i < 3000 && e.step(&ev); ++i) {
    if (ev.kind == Event::Kind::kCooperPair) {
      ++cp_seen;
      EXPECT_NEAR(ev.charge, -2.0 * kE, 1e-30);
    } else {
      EXPECT_NEAR(ev.charge, -kE, 1e-30);
    }
  }
  EXPECT_GT(cp_seen, 0) << "no Cooper-pair events at zero bias resonance";
}

TEST(EngineSc2, QpTableAutoRangeCoversSweep) {
  // Without an explicit hint the auto range must cover typical biases so
  // the cached path (not the slow integral) is used; indirectly verified by
  // wall-clock-friendly event throughput here.
  SetFixture f(0.002, -0.002, 0.0);
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  Engine e(f.c, opts(0.3, 49));
  EXPECT_GT(e.run_events(2000), 0u);
}

// ---- rate calculator ---------------------------------------------------------------

TEST(RateCalc, RejectsCotunnelingWithSuperconductivity) {
  SetFixture f;
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  EngineOptions o = opts(0.1);
  o.cotunneling = true;
  EXPECT_THROW(Engine(f.c, o), CircuitError);
}

TEST(RateCalc, ChargingTermMatchesAnalytic) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  EngineOptions o = opts(1.0);
  RateCalculator rc(f.c, m, o);
  const double expected = kE * kE / (2.0 * 5e-18);
  EXPECT_NEAR(rc.charging_term(0), expected, 1e-6 * expected);
  EXPECT_NEAR(rc.charging_term(1), expected, 1e-6 * expected);
}

TEST(RateCalc, JunctionRatesAreSymmetricUnderNodeSwap) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  EngineOptions o = opts(2.0);
  RateCalculator rc(f.c, m, o);
  const ChannelRates r = rc.junction_rates(0, 0.01, -0.004);
  const ChannelRates rs = rc.junction_rates(0, -0.004, 0.01);
  // Swapping the node potentials exchanges forward and backward channels.
  EXPECT_DOUBLE_EQ(r.rate_fw, rs.rate_bw);
  EXPECT_DOUBLE_EQ(r.rate_bw, rs.rate_fw);
  EXPECT_DOUBLE_EQ(r.dw_fw, rs.dw_bw);
  // dw_fw + dw_bw = 2u always.
  EXPECT_NEAR(r.dw_fw + r.dw_bw, 2.0 * rc.charging_term(0), 1e-27);
}

TEST(RateCalc, CooperPairChargingIsQuadrupled) {
  SetFixture f;
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  ElectrostaticModel m(f.c);
  EngineOptions o = opts(0.1);
  RateCalculator rc(f.c, m, o);
  const ChannelRates cp = rc.cooper_pair_rates(0, 0.0, 0.0);
  EXPECT_NEAR(cp.dw_fw, 4.0 * rc.charging_term(0), 1e-27);
  EXPECT_NEAR(cp.dw_bw, 4.0 * rc.charging_term(0), 1e-27);
}

TEST(RateCalc, GapFollowsTemperature) {
  SetFixture f;
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  ElectrostaticModel m(f.c);
  EngineOptions cold = opts(0.05);
  EngineOptions warm = opts(1.0);
  RateCalculator rc_cold(f.c, m, cold);
  RateCalculator rc_warm(f.c, m, warm);
  EXPECT_GT(rc_cold.gap(), rc_warm.gap());
  EXPECT_GT(rc_warm.gap(), 0.0);
}

// ---- cotunneling bookkeeping ----------------------------------------------------------

TEST(EngineCot2, CotunnelingMovesChargeThroughBothJunctions) {
  SetFixture f(0.004, -0.004, 0.0);
  EngineOptions o = opts(0.0, 51);
  o.cotunneling = true;
  Engine e(f.c, o);
  Event ev;
  ASSERT_TRUE(e.step(&ev));
  EXPECT_EQ(ev.kind, Event::Kind::kCotunneling);
  // Net transfer src <-> drn; the island stays neutral.
  EXPECT_EQ(e.electron_count(f.island), 0);
  // Both junctions record one elementary charge.
  EXPECT_NEAR(std::abs(e.junction_transferred_e(0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(e.junction_transferred_e(1)), 1.0, 1e-12);
}

}  // namespace
}  // namespace semsim
