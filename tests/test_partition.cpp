// Domain-decomposed execution (core/partition.h): plan purity and
// strong-coupling refusal, the 1-cluster bitwise-vs-solo contract, k-cluster
// thread-count invariance, the cross-cut charge-conservation audit under
// fault injection, and driver-level checkpoint/resume of a partitioned run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/driver.h"
#include "base/error.h"
#include "base/thread_pool.h"
#include "core/engine.h"
#include "core/partition.h"
#include "guard/fault.h"
#include "netlist/circuit.h"
#include "netlist/electrostatics.h"

namespace semsim {
namespace {

/// The perf gate's chain scenario: `stages` independent double-junction
/// SETs between shared +-10 mV rails, neighbouring islands tied by
/// `coupling_f`. At 0.5 aF against the 20 aF ground caps the normalized
/// kappa coupling sits just below the planner's default threshold (the cut
/// regime); at 5 aF it is far above it (the refuse-to-cut regime).
Circuit stage_circuit(int stages, double coupling_f) {
  Circuit c;
  const NodeId vp = c.add_external("vp");
  const NodeId vn = c.add_external("vn");
  c.set_source(vp, Waveform::dc(0.01));
  c.set_source(vn, Waveform::dc(-0.01));
  NodeId prev = Circuit::kGroundNode;
  for (int s = 0; s < stages; ++s) {
    const NodeId i = c.add_island();
    c.add_junction(vp, i, 1e6, 1e-18);
    c.add_junction(i, vn, 1e6, 1e-18);
    c.add_capacitor(i, Circuit::kGroundNode, 20e-18);
    if (coupling_f > 0.0 && s > 0) c.add_capacitor(prev, i, coupling_f);
    prev = i;
  }
  c.build_caches();
  return c;
}

constexpr double kWeak = 0.5e-18;
constexpr double kStrong = 5e-18;

PartitionSpec spec_for(std::uint32_t clusters) {
  PartitionSpec s;
  s.enabled = true;
  s.clusters = clusters;
  return s;
}

EngineOptions base_options(std::uint64_t seed = 42) {
  EngineOptions o;
  o.temperature = 0.0;
  o.seed = seed;
  return o;
}

void expect_snapshots_equal(const EngineSnapshot& a, const EngineSnapshot& b) {
  EXPECT_EQ(a.rng, b.rng);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.next_breakpoint, b.next_breakpoint);
  EXPECT_EQ(a.electrons, b.electrons);
  EXPECT_EQ(a.transferred_e, b.transferred_e);
  EXPECT_EQ(a.v_ext, b.v_ext);
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_EQ(a.stats.rate_evaluations, b.stats.rate_evaluations);
}

// ---- planner --------------------------------------------------------------

TEST(PartitionPlan, PureFunctionOfCircuitAndSpec) {
  const Circuit c = stage_circuit(8, kWeak);
  const ElectrostaticModel m(c);
  const PartitionSpec spec = spec_for(4);

  const PartitionPlan a = build_partition_plan(c, m, spec);
  const PartitionPlan b = build_partition_plan(c, m, spec);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.island_cluster, b.island_cluster);
  EXPECT_EQ(a.junction_cluster, b.junction_cluster);
  EXPECT_EQ(a.components, b.components);
  EXPECT_EQ(a.cut_capacitors, b.cut_capacitors);
  EXPECT_EQ(a.max_cut_coupling, b.max_cut_coupling);

  // The weak chain decomposes stage by stage and packs onto 4 clusters.
  EXPECT_EQ(a.clusters, 4u);
  EXPECT_EQ(a.components, 8u);
  EXPECT_GT(a.cut_capacitors, 0u);
  EXPECT_LE(a.max_cut_coupling, spec.coupling_threshold);
  // A junction with an island endpoint lives on that island's cluster.
  ASSERT_EQ(a.junction_cluster.size(), 16u);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(a.junction_cluster[2 * s], a.island_cluster[s]);
    EXPECT_EQ(a.junction_cluster[2 * s + 1], a.island_cluster[s]);
  }
}

TEST(PartitionPlan, RefusesToCutStrongCoupling) {
  const Circuit c = stage_circuit(8, kStrong);
  const ElectrostaticModel m(c);
  const PartitionPlan p = build_partition_plan(c, m, spec_for(4));
  // One strongly-coupled component: the planner never cuts it, no matter
  // how many clusters were requested.
  EXPECT_EQ(p.components, 1u);
  EXPECT_EQ(p.clusters, 1u);
  EXPECT_EQ(p.cut_capacitors, 0u);
  EXPECT_EQ(p.max_cut_coupling, 0.0);
}

// ---- 1-cluster bitwise-vs-solo contract ----------------------------------

TEST(PartitionEngine, OneClusterIsBitwiseIdenticalToSoloEngine) {
  const Circuit c = stage_circuit(6, kWeak);
  const ElectrostaticModel m(c);
  const EngineOptions o = base_options();

  Engine solo(c, o);
  ASSERT_EQ(solo.run_events(5000), 5000u);
  EngineSnapshot want = solo.snapshot();

  const ParallelExecutor exec8(8);
  for (const ParallelExecutor* exec : {(const ParallelExecutor*)nullptr,
                                       &exec8}) {
    SCOPED_TRACE(exec == nullptr ? "no executor" : "8-thread executor");
    PartitionedEngine part(c, m, o, spec_for(1), exec);
    ASSERT_EQ(part.clusters(), 1u);
    std::uint64_t remaining = 5000;
    while (remaining > 0) {
      const std::uint64_t chunk = remaining < 512 ? remaining : 512;
      ASSERT_EQ(part.advance_window(chunk), chunk);
      remaining -= chunk;
    }
    EXPECT_EQ(part.total_events(), 5000u);
    std::vector<EngineSnapshot> snaps = part.snapshot_clusters();
    ASSERT_EQ(snaps.size(), 1u);
    expect_snapshots_equal(want, snaps[0]);
    EXPECT_EQ(part.time(), solo.time());
  }
}

// ---- k-cluster thread-count invariance ------------------------------------

TEST(PartitionEngine, WindowedRunIsThreadCountInvariant) {
  const Circuit c = stage_circuit(8, kWeak);
  const ElectrostaticModel m(c);
  const EngineOptions o = base_options(7);

  const ParallelExecutor ex1(1);
  const ParallelExecutor ex8(8);
  PartitionedEngine p1(c, m, o, spec_for(4), &ex1);
  PartitionedEngine p8(c, m, o, spec_for(4), &ex8);
  ASSERT_EQ(p1.clusters(), 4u);
  ASSERT_EQ(p8.clusters(), 4u);
  EXPECT_EQ(p1.window(), p8.window());

  for (int w = 0; w < 12; ++w) {
    p1.advance_window(0);
    p8.advance_window(0);
  }
  EXPECT_EQ(p1.windows_done(), 12u);
  EXPECT_GT(p1.total_events(), 0u);
  EXPECT_EQ(p1.total_events(), p8.total_events());
  EXPECT_EQ(p1.time(), p8.time());

  std::vector<EngineSnapshot> s1 = p1.snapshot_clusters();
  std::vector<EngineSnapshot> s8 = p8.snapshot_clusters();
  ASSERT_EQ(s1.size(), 4u);
  ASSERT_EQ(s8.size(), 4u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    SCOPED_TRACE("cluster " + std::to_string(i));
    expect_snapshots_equal(s1[i], s8[i]);
  }
}

// ---- cross-cut charge audit under fault injection --------------------------

TEST(PartitionEngine, WindowAuditCatchesCorruptedCharge) {
  const Circuit c = stage_circuit(8, kWeak);
  const ElectrostaticModel m(c);

  FaultPlan plan;
  FaultSpec f;
  f.kind = FaultKind::kCorruptCharge;
  f.unit = 1;  // cluster 1's engine
  f.at_event = 40;
  f.index = 0;
  plan.faults.push_back(f);

  EngineOptions o = base_options(3);
  // Disable the engines' own in-run auditor so detection must come from
  // the partition barrier's cross-window audit.
  o.audit.enabled = false;
  o.fault = FaultInjector(&plan, 0, 0);

  const ParallelExecutor exec(2);
  PartitionedEngine part(c, m, o, spec_for(2), &exec);
  ASSERT_EQ(part.clusters(), 2u);
  try {
    for (int w = 0; w < 64 && !part.exhausted(); ++w) part.advance_window(256);
    FAIL() << "injected kCorruptCharge was not detected at a window barrier";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.code(), ErrorCode::kChargeNotConserved);
    EXPECT_NE(std::string(e.what()).find("cluster 1"), std::string::npos);
  }
}

TEST(PartitionEngine, CleanRunPassesEveryWindowAudit) {
  const Circuit c = stage_circuit(8, kWeak);
  const ElectrostaticModel m(c);
  const ParallelExecutor exec(2);
  PartitionedEngine part(c, m, base_options(3), spec_for(2), &exec);
  for (int w = 0; w < 32; ++w) part.advance_window(256);
  EXPECT_GT(part.total_events(), 0u);
  EXPECT_FALSE(part.exhausted());
}

// ---- driver-level checkpoint/resume ---------------------------------------

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

std::uint64_t u64_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
  return v;
}

void put_u64(std::vector<std::uint8_t>& b, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

// Header layout (obs/checkpoint.h): record_count@32, records from byte 40
// as [u64 unit | u64 len | payload | u64 checksum]. Same surgery as
// test_checkpoint.cpp: truncate to the first `keep` records.
void keep_first_records(const std::string& path, std::uint64_t keep) {
  std::vector<std::uint8_t> b = read_bytes(path);
  ASSERT_LE(keep, u64_at(b, 32));
  std::size_t off = 40;
  for (std::uint64_t k = 0; k < keep; ++k) {
    const std::uint64_t len = u64_at(b, off + 8);
    off += 8 + 8 + static_cast<std::size_t>(len) + 8;
  }
  b.resize(off);
  put_u64(b, 32, keep);
  write_bytes(path, b);
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

SimulationInput partitioned_input() {
  SimulationInput in;
  in.circuit = stage_circuit(4, kWeak);
  in.temperature = 0.0;
  in.record_junctions = {0, 1};
  in.max_jumps = 3000;
  return in;
}

DriverResult run_partitioned_input(unsigned threads,
                                   const std::string& checkpoint = "",
                                   const std::string& resume = "") {
  const SimulationInput in = partitioned_input();
  DriverOptions opt;
  opt.seed = 5;
  opt.threads = threads;
  opt.partition.enabled = true;
  opt.partition.clusters = 2;
  opt.checkpoint_path = checkpoint;
  opt.resume_path = resume;
  return run_simulation(in, opt);
}

void expect_results_bitwise_equal(const DriverResult& a,
                                  const DriverResult& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.simulated_time, b.simulated_time);
  ASSERT_TRUE(a.current.has_value());
  ASSERT_TRUE(b.current.has_value());
  EXPECT_EQ(a.current->mean, b.current->mean);
  EXPECT_EQ(a.current->stderr_mean, b.current->stderr_mean);
}

TEST(PartitionDriver, CheckpointedRunResumesMidWindowBitwise) {
  TempFile tmp("/tmp/semsim_ckpt_partition.bin");
  // The partitioned path snapshots at its 32 milestones on EVERY run —
  // checkpointed or not — so the un-checkpointed reference, the complete
  // checkpointed run, and the interrupted+resumed run must all agree.
  const DriverResult ref = run_partitioned_input(2);
  EXPECT_EQ(ref.counters.units, 2u);  // effective clusters

  const DriverResult full = run_partitioned_input(2, tmp.path);
  expect_results_bitwise_equal(ref, full);

  keep_first_records(tmp.path, 9);  // crash inside the milestone sequence
  const std::vector<std::uint8_t> interrupted = read_bytes(tmp.path);
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(threads);
    write_bytes(tmp.path, interrupted);
    const DriverResult res = run_partitioned_input(threads, "", tmp.path);
    expect_results_bitwise_equal(ref, res);
  }
}

}  // namespace
}  // namespace semsim
