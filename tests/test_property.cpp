// End-to-end property tests: the adaptive Monte-Carlo engine against the
// master-equation oracle on randomized multi-island circuits, and engine
// internal invariants (potential-cache exactness at refresh points).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/current.h"
#include "base/constants.h"
#include "base/fenwick.h"
#include "base/random.h"
#include "core/engine.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"
#include "master/master_equation.h"

namespace semsim {
namespace {

struct RandomCircuit {
  Circuit c;
  NodeId left = 0, right = 0, gate = 0;
};

// A random series array of 1-3 islands between two leads, with a gate and
// random couplings — electrically valid by construction.
RandomCircuit make_random_circuit(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RandomCircuit out;
  out.left = out.c.add_external("left");
  out.right = out.c.add_external("right");
  out.gate = out.c.add_external("gate");
  const int n_islands = 1 + static_cast<int>(rng.uniform_below(3));
  NodeId prev = out.left;
  for (int i = 0; i < n_islands; ++i) {
    const NodeId isl = out.c.add_island();
    // Draw into locals: function-argument evaluation order is unspecified.
    const double r = 1e6 * (0.5 + rng.uniform01());
    const double cj = 1e-18 * (0.5 + rng.uniform01());
    out.c.add_junction(prev, isl, r, cj);
    out.c.add_capacitor(out.gate, isl, 1e-18 * (0.5 + 2.0 * rng.uniform01()));
    if (rng.uniform01() < 0.5) {
      out.c.add_capacitor(isl, Circuit::kGroundNode,
                          1e-18 * (0.5 + 4.0 * rng.uniform01()));
    }
    if (rng.uniform01() < 0.3) {
      out.c.set_background_charge(isl, rng.uniform01());
    }
    prev = isl;
  }
  const double r_last = 1e6 * (0.5 + rng.uniform01());
  const double cj_last = 1e-18 * (0.5 + rng.uniform01());
  out.c.add_junction(prev, out.right, r_last, cj_last);

  const double v_half = 0.01 + 0.04 * rng.uniform01();
  out.c.set_source(out.left, Waveform::dc(v_half));
  out.c.set_source(out.right, Waveform::dc(-v_half));
  out.c.set_source(out.gate, Waveform::dc(0.03 * (rng.uniform01() - 0.5)));
  return out;
}

class McVsMeRandom : public ::testing::TestWithParam<int> {};

TEST_P(McVsMeRandom, AdaptiveCurrentMatchesMasterEquation) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomCircuit rc = make_random_circuit(seed);
  EngineOptions o;
  o.temperature = 2.0;
  MasterEquationSolver me(rc.c, o);
  const double i_me = me.junction_current(0);

  o.seed = seed * 13 + 1;
  Engine mc(rc.c, o);
  // Biased multi-island circuits can be glassy: start the Monte-Carlo run
  // inside the basin the master equation solved, so both methods sample the
  // same branch (see MasterEquationSolver::most_probable_state).
  const ChargeState mode = me.most_probable_state();
  std::vector<std::pair<NodeId, long>> init;
  for (std::size_t k = 0; k < mode.size(); ++k) {
    init.push_back({me.island_nodes()[k], mode[k]});
  }
  mc.set_electron_counts(init);
  const CurrentEstimate est = measure_mean_current(
      mc, {{0, 1.0}}, CurrentMeasureConfig{5000, 120000, 8});

  if (std::abs(i_me) < 1e-14) {
    // Effectively blockaded: the Monte-Carlo estimate must be tiny too.
    EXPECT_LT(std::abs(est.mean), 1e-12) << "ME " << i_me;
  } else {
    EXPECT_NEAR(est.mean / i_me, 1.0, 0.10)
        << "seed " << seed << ": ME " << i_me << " vs MC " << est.mean
        << " +- " << est.stderr_mean;
  }
  // Flux balance of the series array: both end junctions carry the same
  // expected current.
  const std::size_t last = rc.c.junction_count() - 1;
  if (std::abs(i_me) > 1e-14) {
    EXPECT_NEAR(me.junction_current(last) / i_me, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McVsMeRandom, ::testing::Range(1, 13));

// ---- engine invariants ------------------------------------------------------------

TEST(EngineInvariant, PotentialCacheExactAtRefreshBoundary) {
  // Right after a periodic refresh the adaptive potential cache must equal
  // the from-scratch solution.
  RandomCircuit rc = make_random_circuit(99);
  EngineOptions o;
  o.temperature = 2.0;
  o.adaptive.refresh_interval = 500;
  o.seed = 4;
  Engine e(rc.c, o);
  e.run_events(500);  // lands exactly on a refresh

  const ElectrostaticModel& m = e.model();
  std::vector<double> q(m.island_count());
  for (std::size_t k = 0; k < q.size(); ++k) {
    const NodeId node = m.island_node(k);
    q[k] = kElementaryCharge * (rc.c.background_charge_e(node) -
                                static_cast<double>(e.electron_count(node)));
  }
  std::vector<double> v_ext(m.external_count());
  for (std::size_t i = 0; i < v_ext.size(); ++i) {
    v_ext[i] = e.node_voltage(m.external_node(i));
  }
  const std::vector<double> exact = m.island_potentials(q, v_ext);
  for (std::size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(e.node_voltage(m.island_node(k)), exact[k], 1e-12)
        << "island " << k;
  }
}

TEST(EngineInvariant, AdaptiveDriftStaysBoundedBetweenRefreshes) {
  // Between refreshes the selective cache may drift, but for a locally
  // coupled circuit the drift must stay well below the logic/energy scales
  // (here: a fraction of a millivolt).
  RandomCircuit rc = make_random_circuit(7);
  EngineOptions o;
  o.temperature = 2.0;
  o.adaptive.refresh_interval = 100000;  // effectively never refresh
  o.seed = 11;
  Engine e(rc.c, o);
  e.run_events(20000);

  const ElectrostaticModel& m = e.model();
  std::vector<double> q(m.island_count());
  for (std::size_t k = 0; k < q.size(); ++k) {
    const NodeId node = m.island_node(k);
    q[k] = kElementaryCharge * (rc.c.background_charge_e(node) -
                                static_cast<double>(e.electron_count(node)));
  }
  std::vector<double> v_ext(m.external_count());
  for (std::size_t i = 0; i < v_ext.size(); ++i) {
    v_ext[i] = e.node_voltage(m.external_node(i));
  }
  const std::vector<double> exact = m.island_potentials(q, v_ext);
  for (std::size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(e.node_voltage(m.island_node(k)), exact[k], 1e-3)
        << "island " << k;
  }
}

TEST(EngineInvariant, DegenerateAdaptiveReproducesNonAdaptiveEventSequence) {
  // With threshold alpha -> 0 every junction is flagged after every event,
  // and refresh_interval = 1 recomputes all potentials and rates from
  // scratch each event — the adaptive solver degenerates to the
  // conventional one. Both solvers draw the same two RNG variates per
  // event (waiting time + channel selector), so on a DC-driven circuit the
  // executed event sequences must coincide channel-for-channel.
  LogicBenchmark b = make_benchmark("74LS138");
  ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
  const SetLogicParams& p = elab.builder.params();
  // DC inputs only (no waveform breakpoints): both engines then consume
  // their RNG streams identically.
  const auto& ins = b.netlist.inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    elab.circuit().set_source(elab.node(ins[i]),
                              Waveform::dc(b.base_vector[i] ? p.vdd : 0.0));
  }
  const auto preseed = dc_preseed(b, elab, b.base_vector);

  EngineOptions base;
  base.temperature = p.temperature;
  base.seed = 1234;

  EngineOptions non_adaptive = base;
  non_adaptive.adaptive.enabled = false;
  Engine ref(elab.circuit(), non_adaptive);
  ref.set_electron_counts(preseed);

  EngineOptions degenerate = base;
  degenerate.adaptive.enabled = true;
  // alpha -> 0: the smallest positive threshold the solver accepts flags
  // every tested junction on any drift.
  degenerate.adaptive.threshold = 1e-300;
  degenerate.adaptive.refresh_interval = 1;
  Engine adapt(elab.circuit(), degenerate);
  adapt.set_electron_counts(preseed);

  Event ea, eb;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ref.step(&ea)) << "event " << i;
    ASSERT_TRUE(adapt.step(&eb)) << "event " << i;
    ASSERT_EQ(ea.kind, eb.kind) << "event " << i;
    ASSERT_EQ(ea.index, eb.index) << "event " << i;
    ASSERT_EQ(ea.from, eb.from) << "event " << i;
    ASSERT_EQ(ea.to, eb.to) << "event " << i;
    ASSERT_EQ(ea.charge, eb.charge) << "event " << i;
    // Times may differ by FP rounding (incremental vs from-scratch
    // potentials enter the rates), but only at the ulp level.
    ASSERT_NEAR(eb.time / ea.time, 1.0, 1e-9) << "event " << i;
  }
}

TEST(EngineInvariant, ChargeNeutralityOfTransfers) {
  // Net electrons entering islands == net electrons leaving leads, i.e. the
  // sum of island counts matches the junction transfer bookkeeping.
  RandomCircuit rc = make_random_circuit(21);
  EngineOptions o;
  o.temperature = 3.0;
  o.seed = 2;
  Engine e(rc.c, o);
  Event ev;
  long net_from_leads = 0;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(e.step(&ev));
    const long n = static_cast<long>(std::lround(-ev.charge / kElementaryCharge));
    const bool from_lead = !rc.c.is_island(ev.from);
    const bool to_lead = !rc.c.is_island(ev.to);
    if (from_lead && !to_lead) net_from_leads += n;
    if (to_lead && !from_lead) net_from_leads -= n;
  }
  long total_on_islands = 0;
  for (const NodeId isl : rc.c.islands()) total_on_islands += e.electron_count(isl);
  EXPECT_EQ(total_on_islands, net_from_leads);
}

TEST(FenwickProperty, SetManyMatchesRepeatedSetBitwise) {
  // set_many's contract is BITWISE equivalence to repeated set() in call
  // order — the engine's golden-trajectory reproducibility rests on the
  // internal tree nodes accumulating identical FP deltas, not just on the
  // per-channel values matching. Random subsets, including duplicates and
  // zero weights, against a mirror tree driven by single set() calls.
  Xoshiro256 rng(0xF3A9);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_below(300);
    FenwickTree batched(n), mirror(n);
    // Random non-trivial starting state, built identically on both.
    for (std::size_t i = 0; i < n; ++i) {
      const double w = rng.uniform01() < 0.3 ? 0.0 : rng.uniform01() * 1e12;
      batched.set(i, w);
      mirror.set(i, w);
    }
    for (int round = 0; round < 8; ++round) {
      const std::size_t m = 1 + rng.uniform_below(n);
      std::vector<std::size_t> idx(m);
      std::vector<double> w(m);
      for (std::size_t k = 0; k < m; ++k) {
        idx[k] = rng.uniform_below(n);  // duplicates allowed, apply in order
        w[k] = rng.uniform01() < 0.2 ? 0.0 : rng.uniform01() * 1e12;
      }
      batched.set_many(idx, w);
      for (std::size_t k = 0; k < m; ++k) mirror.set(idx[k], w[k]);
      for (std::size_t i = 0; i <= n; ++i) {
        ASSERT_EQ(batched.prefix_sum(i), mirror.prefix_sum(i))
            << "trial " << trial << " round " << round << " prefix " << i;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batched.value(i), mirror.value(i));
      }
    }
  }
}

TEST(FenwickProperty, SetManyRejectsBadInput) {
  FenwickTree t(4);
  const std::vector<std::size_t> idx{1, 4};
  const std::vector<double> w{1.0, 1.0};
  EXPECT_THROW(t.set_many(idx, w), Error);
  const std::vector<std::size_t> idx2{1, 2};
  const std::vector<double> neg{1.0, -2.0};
  EXPECT_THROW(t.set_many(idx2, neg), Error);
  // Validation is all-or-nothing: the failed batch must not have been
  // partially applied.
  EXPECT_EQ(t.total(), 0.0);
  const std::vector<double> short_w{1.0};
  EXPECT_THROW(t.set_many(idx2, short_w), Error);
}

}  // namespace
}  // namespace semsim
