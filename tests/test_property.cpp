// End-to-end property tests: the adaptive Monte-Carlo engine against the
// master-equation oracle on randomized multi-island circuits, and engine
// internal invariants (potential-cache exactness at refresh points).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "analysis/current.h"
#include "base/constants.h"
#include "base/fenwick.h"
#include "base/math_util.h"
#include "base/random.h"
#include "core/engine.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"
#include "master/master_equation.h"
#include "physics/rates.h"

namespace semsim {
namespace {

struct RandomCircuit {
  Circuit c;
  NodeId left = 0, right = 0, gate = 0;
};

// A random series array of 1-3 islands between two leads, with a gate and
// random couplings — electrically valid by construction.
RandomCircuit make_random_circuit(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RandomCircuit out;
  out.left = out.c.add_external("left");
  out.right = out.c.add_external("right");
  out.gate = out.c.add_external("gate");
  const int n_islands = 1 + static_cast<int>(rng.uniform_below(3));
  NodeId prev = out.left;
  for (int i = 0; i < n_islands; ++i) {
    const NodeId isl = out.c.add_island();
    // Draw into locals: function-argument evaluation order is unspecified.
    const double r = 1e6 * (0.5 + rng.uniform01());
    const double cj = 1e-18 * (0.5 + rng.uniform01());
    out.c.add_junction(prev, isl, r, cj);
    out.c.add_capacitor(out.gate, isl, 1e-18 * (0.5 + 2.0 * rng.uniform01()));
    if (rng.uniform01() < 0.5) {
      out.c.add_capacitor(isl, Circuit::kGroundNode,
                          1e-18 * (0.5 + 4.0 * rng.uniform01()));
    }
    if (rng.uniform01() < 0.3) {
      out.c.set_background_charge(isl, rng.uniform01());
    }
    prev = isl;
  }
  const double r_last = 1e6 * (0.5 + rng.uniform01());
  const double cj_last = 1e-18 * (0.5 + rng.uniform01());
  out.c.add_junction(prev, out.right, r_last, cj_last);

  const double v_half = 0.01 + 0.04 * rng.uniform01();
  out.c.set_source(out.left, Waveform::dc(v_half));
  out.c.set_source(out.right, Waveform::dc(-v_half));
  out.c.set_source(out.gate, Waveform::dc(0.03 * (rng.uniform01() - 0.5)));
  return out;
}

class McVsMeRandom : public ::testing::TestWithParam<int> {};

TEST_P(McVsMeRandom, AdaptiveCurrentMatchesMasterEquation) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomCircuit rc = make_random_circuit(seed);
  EngineOptions o;
  o.temperature = 2.0;
  MasterEquationSolver me(rc.c, o);
  const double i_me = me.junction_current(0);

  o.seed = seed * 13 + 1;
  Engine mc(rc.c, o);
  // Biased multi-island circuits can be glassy: start the Monte-Carlo run
  // inside the basin the master equation solved, so both methods sample the
  // same branch (see MasterEquationSolver::most_probable_state).
  const ChargeState mode = me.most_probable_state();
  std::vector<std::pair<NodeId, long>> init;
  for (std::size_t k = 0; k < mode.size(); ++k) {
    init.push_back({me.island_nodes()[k], mode[k]});
  }
  mc.set_electron_counts(init);
  const CurrentEstimate est = measure_mean_current(
      mc, {{0, 1.0}}, CurrentMeasureConfig{5000, 120000, 8});

  if (std::abs(i_me) < 1e-14) {
    // Effectively blockaded: the Monte-Carlo estimate must be tiny too.
    EXPECT_LT(std::abs(est.mean), 1e-12) << "ME " << i_me;
  } else {
    EXPECT_NEAR(est.mean / i_me, 1.0, 0.10)
        << "seed " << seed << ": ME " << i_me << " vs MC " << est.mean
        << " +- " << est.stderr_mean;
  }
  // Flux balance of the series array: both end junctions carry the same
  // expected current.
  const std::size_t last = rc.c.junction_count() - 1;
  if (std::abs(i_me) > 1e-14) {
    EXPECT_NEAR(me.junction_current(last) / i_me, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McVsMeRandom, ::testing::Range(1, 13));

// ---- engine invariants ------------------------------------------------------------

TEST(EngineInvariant, PotentialCacheExactAtRefreshBoundary) {
  // Right after a periodic refresh the adaptive potential cache must equal
  // the from-scratch solution.
  RandomCircuit rc = make_random_circuit(99);
  EngineOptions o;
  o.temperature = 2.0;
  o.adaptive.refresh_interval = 500;
  o.seed = 4;
  Engine e(rc.c, o);
  e.run_events(500);  // lands exactly on a refresh

  const ElectrostaticModel& m = e.model();
  std::vector<double> q(m.island_count());
  for (std::size_t k = 0; k < q.size(); ++k) {
    const NodeId node = m.island_node(k);
    q[k] = kElementaryCharge * (rc.c.background_charge_e(node) -
                                static_cast<double>(e.electron_count(node)));
  }
  std::vector<double> v_ext(m.external_count());
  for (std::size_t i = 0; i < v_ext.size(); ++i) {
    v_ext[i] = e.node_voltage(m.external_node(i));
  }
  const std::vector<double> exact = m.island_potentials(q, v_ext);
  for (std::size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(e.node_voltage(m.island_node(k)), exact[k], 1e-12)
        << "island " << k;
  }
}

TEST(EngineInvariant, AdaptiveDriftStaysBoundedBetweenRefreshes) {
  // Between refreshes the selective cache may drift, but for a locally
  // coupled circuit the drift must stay well below the logic/energy scales
  // (here: a fraction of a millivolt).
  RandomCircuit rc = make_random_circuit(7);
  EngineOptions o;
  o.temperature = 2.0;
  o.adaptive.refresh_interval = 100000;  // effectively never refresh
  o.seed = 11;
  Engine e(rc.c, o);
  e.run_events(20000);

  const ElectrostaticModel& m = e.model();
  std::vector<double> q(m.island_count());
  for (std::size_t k = 0; k < q.size(); ++k) {
    const NodeId node = m.island_node(k);
    q[k] = kElementaryCharge * (rc.c.background_charge_e(node) -
                                static_cast<double>(e.electron_count(node)));
  }
  std::vector<double> v_ext(m.external_count());
  for (std::size_t i = 0; i < v_ext.size(); ++i) {
    v_ext[i] = e.node_voltage(m.external_node(i));
  }
  const std::vector<double> exact = m.island_potentials(q, v_ext);
  for (std::size_t k = 0; k < exact.size(); ++k) {
    EXPECT_NEAR(e.node_voltage(m.island_node(k)), exact[k], 1e-3)
        << "island " << k;
  }
}

TEST(EngineInvariant, DegenerateAdaptiveReproducesNonAdaptiveEventSequence) {
  // With threshold alpha -> 0 every junction is flagged after every event,
  // and refresh_interval = 1 recomputes all potentials and rates from
  // scratch each event — the adaptive solver degenerates to the
  // conventional one. Both solvers draw the same two RNG variates per
  // event (waiting time + channel selector), so on a DC-driven circuit the
  // executed event sequences must coincide channel-for-channel.
  LogicBenchmark b = make_benchmark("74LS138");
  ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
  const SetLogicParams& p = elab.builder.params();
  // DC inputs only (no waveform breakpoints): both engines then consume
  // their RNG streams identically.
  const auto& ins = b.netlist.inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    elab.circuit().set_source(elab.node(ins[i]),
                              Waveform::dc(b.base_vector[i] ? p.vdd : 0.0));
  }
  const auto preseed = dc_preseed(b, elab, b.base_vector);

  EngineOptions base;
  base.temperature = p.temperature;
  base.seed = 1234;

  EngineOptions non_adaptive = base;
  non_adaptive.adaptive.enabled = false;
  Engine ref(elab.circuit(), non_adaptive);
  ref.set_electron_counts(preseed);

  EngineOptions degenerate = base;
  degenerate.adaptive.enabled = true;
  // alpha -> 0: the smallest positive threshold the solver accepts flags
  // every tested junction on any drift.
  degenerate.adaptive.threshold = 1e-300;
  degenerate.adaptive.refresh_interval = 1;
  Engine adapt(elab.circuit(), degenerate);
  adapt.set_electron_counts(preseed);

  Event ea, eb;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ref.step(&ea)) << "event " << i;
    ASSERT_TRUE(adapt.step(&eb)) << "event " << i;
    ASSERT_EQ(ea.kind, eb.kind) << "event " << i;
    ASSERT_EQ(ea.index, eb.index) << "event " << i;
    ASSERT_EQ(ea.from, eb.from) << "event " << i;
    ASSERT_EQ(ea.to, eb.to) << "event " << i;
    ASSERT_EQ(ea.charge, eb.charge) << "event " << i;
    // Times may differ by FP rounding (incremental vs from-scratch
    // potentials enter the rates), but only at the ulp level.
    ASSERT_NEAR(eb.time / ea.time, 1.0, 1e-9) << "event " << i;
  }
}

TEST(EngineInvariant, ChargeNeutralityOfTransfers) {
  // Net electrons entering islands == net electrons leaving leads, i.e. the
  // sum of island counts matches the junction transfer bookkeeping.
  RandomCircuit rc = make_random_circuit(21);
  EngineOptions o;
  o.temperature = 3.0;
  o.seed = 2;
  Engine e(rc.c, o);
  Event ev;
  long net_from_leads = 0;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(e.step(&ev));
    const long n = static_cast<long>(std::lround(-ev.charge / kElementaryCharge));
    const bool from_lead = !rc.c.is_island(ev.from);
    const bool to_lead = !rc.c.is_island(ev.to);
    if (from_lead && !to_lead) net_from_leads += n;
    if (to_lead && !from_lead) net_from_leads -= n;
  }
  long total_on_islands = 0;
  for (const NodeId isl : rc.c.islands()) total_on_islands += e.electron_count(isl);
  EXPECT_EQ(total_on_islands, net_from_leads);
}

// ---- batch rate kernels -----------------------------------------------------

/// Randomized per-channel inputs covering every kernel branch: exact zeros,
/// the sub-series region (|dW| << 1e-8 kT), moderate thermally active
/// arguments, and deep +-500 kT suppression/clamp arguments.
void fill_rate_inputs(Xoshiro256& rng, double kt, std::size_t n,
                      std::vector<double>& dw, std::vector<double>& res,
                      std::vector<double>& g) {
  dw.resize(n);
  res.resize(n);
  g.resize(n);
  const double scale = kt > 0.0 ? kt : 1e-21;
  for (std::size_t i = 0; i < n; ++i) {
    res[i] = 1e4 * (1.0 + rng.uniform01() * 1e3);
    // The engine precomputes conductance with exactly this expression
    // (core/rate_calculator.cpp); the bitwise contract is stated against it.
    g[i] = 1.0 / (kElementaryCharge * kElementaryCharge * res[i]);
    const double sign = rng.uniform01() < 0.5 ? -1.0 : 1.0;
    switch (rng.uniform_below(6)) {
      case 0: dw[i] = 0.0; break;
      case 1: dw[i] = sign * scale * 1e-10 * rng.uniform01(); break;
      case 2: dw[i] = sign * scale * 1e-9 * rng.uniform01(); break;
      case 3: dw[i] = sign * scale * 500.0 * (0.9 + 0.2 * rng.uniform01());
              break;
      case 4: dw[i] = sign * scale * 900.0; break;  // past the clamp
      default: dw[i] = sign * scale * 30.0 * rng.uniform01(); break;
    }
  }
}

TEST(RateKernelProperty, ExactBatchBitwiseEqualsScalarOrthodoxRate) {
  // The batched kernel replaced the per-channel orthodox_rate call in the MC
  // hot path; golden trajectories hash the sampled waiting times, so any
  // single differing bit in any rate is a correctness bug, not a tolerance
  // question. Sweep temperatures (including T = 0) and argument classes.
  Xoshiro256 rng(0xBA7C4);
  for (double temperature : {0.0, 0.05, 1.0, 4.2, 300.0}) {
    const double kt = kBoltzmann * temperature;
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 1 + rng.uniform_below(97);
      std::vector<double> dw, res, g;
      fill_rate_inputs(rng, kt, n, dw, res, g);
      std::vector<double> out(n, -1.0);
      tunnel_rates_batch(dw.data(), g.data(), kt, out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double ref = orthodox_rate(dw[i], res[i], temperature);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                  std::bit_cast<std::uint64_t>(ref))
            << "T = " << temperature << " dW = " << dw[i] << " R = " << res[i]
            << ": batch " << out[i] << " vs scalar " << ref;
      }
    }
  }
}

TEST(RateKernelProperty, FastBatchWithinDocumentedRelativeError) {
  // --fast-rates promises <= 1e-12 relative error against the exact kernel
  // per channel, over the full argument range. Edge branches (x == 0,
  // series, clamps, T = 0) must be byte-identical.
  Xoshiro256 rng(0xFA57);
  for (double temperature : {0.05, 1.0, 4.2, 300.0}) {
    const double kt = kBoltzmann * temperature;
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 1 + rng.uniform_below(97);
      std::vector<double> dw, res, g;
      fill_rate_inputs(rng, kt, n, dw, res, g);
      std::vector<double> exact(n), fast(n);
      tunnel_rates_batch(dw.data(), g.data(), kt, exact.data(), n);
      tunnel_rates_batch_fast(dw.data(), g.data(), kt, fast.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        const double x = dw[i] / kt;
        if (x == 0.0 || std::abs(x) < 1e-8 || std::abs(x) > 700.0) {
          // Outside the polynomial range the fast kernel takes the exact
          // kernel's branches verbatim.
          ASSERT_EQ(std::bit_cast<std::uint64_t>(fast[i]),
                    std::bit_cast<std::uint64_t>(exact[i]))
              << "T = " << temperature << " dW = " << dw[i];
        } else {
          ASSERT_LE(std::abs(fast[i] - exact[i]), 1e-12 * std::abs(exact[i]))
              << "T = " << temperature << " dW = " << dw[i] << " x = " << x
              << ": fast " << fast[i] << " vs exact " << exact[i];
        }
      }
    }
  }
  // T = 0: the whole kernel is the exact max+multiply loop.
  std::vector<double> dw, res, g;
  fill_rate_inputs(rng, 0.0, 64, dw, res, g);
  std::vector<double> exact(64), fast(64);
  tunnel_rates_batch(dw.data(), g.data(), 0.0, exact.data(), 64);
  tunnel_rates_batch_fast(dw.data(), g.data(), 0.0, fast.data(), 64);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(fast[i]),
              std::bit_cast<std::uint64_t>(exact[i]));
  }
}

TEST(RateKernelProperty, FastBatchOutputIsChunkPositionIndependent) {
  // The fast kernel processes 8-wide chunks with a scalar fallback for
  // mixed/tail lanes. A channel's value must not depend on where it lands:
  // evaluate a mixed array both in bulk and channel-by-channel.
  Xoshiro256 rng(0xC0FFEE);
  const double kt = kBoltzmann * 1.3;
  const std::size_t n = 61;  // odd: forces a tail
  std::vector<double> dw, res, g;
  fill_rate_inputs(rng, kt, n, dw, res, g);
  std::vector<double> bulk(n);
  tunnel_rates_batch_fast(dw.data(), g.data(), kt, bulk.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    double one = 0.0;
    tunnel_rates_batch_fast(&dw[i], &g[i], kt, &one, 1);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(bulk[i]),
              std::bit_cast<std::uint64_t>(one))
        << "channel " << i << " dW = " << dw[i];
  }
}

TEST(RateKernelProperty, FastBatchDispatchMatchesPortableBitwise) {
  // tunnel_rates_batch_fast runtime-dispatches to a packed AVX2 path on
  // hosts that have it (every vector instruction the packed twin of the
  // portable scalar operation — same association, round-to-nearest, no
  // FMA). Machines with and without AVX2 must produce the same trajectory
  // bits, so the dispatched output is pinned element-wise against the
  // portable implementation: on AVX2 hardware this compares the two code
  // paths; elsewhere it degenerates to self-comparison and still guards the
  // dispatcher.
  Xoshiro256 rng(0xA5E2);
  for (double temperature : {0.05, 1.0, 4.2, 300.0}) {
    const double kt = kBoltzmann * temperature;
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 1 + rng.uniform_below(97);
      std::vector<double> dw, res, g;
      fill_rate_inputs(rng, kt, n, dw, res, g);
      std::vector<double> dispatched(n), portable(n);
      tunnel_rates_batch_fast(dw.data(), g.data(), kt, dispatched.data(), n);
      tunnel_rates_batch_fast_portable(dw.data(), g.data(), kt,
                                       portable.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(dispatched[i]),
                  std::bit_cast<std::uint64_t>(portable[i]))
            << "T = " << temperature << " dW = " << dw[i]
            << " x = " << dw[i] / kt;
      }
    }
  }
}

// ---- Fenwick rebuild --------------------------------------------------------

/// The original delta-scatter O(n log n) build, kept as the bitwise oracle
/// for the left-half-reuse rebuild that replaced it: tree node k must hold
/// the left-to-right sequential sum (from 0.0) of the values it covers.
struct DeltaScatterFenwick {
  std::vector<double> tree;  // 1-based, same layout as FenwickTree
  explicit DeltaScatterFenwick(const std::vector<double>& values)
      : tree(values.size() + 1, 0.0) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double delta = values[i];
      for (std::size_t k = i + 1; k < tree.size(); k += k & (~k + 1)) {
        tree[k] += delta;
      }
    }
  }
  double prefix_sum(std::size_t i) const {
    double s = 0.0;
    for (std::size_t k = i; k > 0; k -= k & (~k + 1)) s += tree[k];
    return s;
  }
};

TEST(FenwickProperty, RebuildBitwiseEqualsDeltaScatterReference) {
  Xoshiro256 rng(0x5E7A11);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.uniform_below(300);
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double roll = rng.uniform01();
      if (roll < 0.2) {
        values[i] = 0.0;
      } else if (roll < 0.3) {
        // -0.0 is a legal weight the T = 0 rate expression really produces
        // (std::max(-0.0, 0.0) picks its first argument); both builds must
        // canonicalize it identically.
        values[i] = -0.0;
      } else {
        values[i] = rng.uniform01() * std::pow(10.0, 12.0 * rng.uniform01());
      }
    }
    FenwickTree t(n);
    t.set_all(values.data(), n);  // pointer overload, engine's call shape
    const DeltaScatterFenwick ref(values);
    for (std::size_t i = 0; i <= n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(t.prefix_sum(i)),
                std::bit_cast<std::uint64_t>(ref.prefix_sum(i)))
          << "trial " << trial << " n " << n << " prefix " << i;
    }
    // Sampling walks the raw tree nodes: spot-check agreement through the
    // public API for a few deterministic targets.
    const double total = t.total();
    ASSERT_EQ(std::bit_cast<std::uint64_t>(total),
              std::bit_cast<std::uint64_t>(ref.prefix_sum(n)));
    if (total > 0.0) {
      for (double frac : {0.0, 0.25, 0.5, 0.75, 0.999}) {
        const std::size_t idx = t.sample(frac * total);
        ASSERT_LT(idx, n);
        ASSERT_GT(t.value(idx), 0.0);
      }
    }
  }
  // Vector overload and the pointer overload must agree too.
  const std::vector<double> v = {1.5, 0.0, -0.0, 2.5, 1e-300, 3.25, 0.125};
  FenwickTree a(v.size()), b(v.size());
  a.set_all(v);
  b.set_all(v.data(), v.size());
  for (std::size_t i = 0; i <= v.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.prefix_sum(i)),
              std::bit_cast<std::uint64_t>(b.prefix_sum(i)));
  }
}

TEST(FenwickProperty, SetManyMatchesRepeatedSetBitwise) {
  // set_many's contract is BITWISE equivalence to repeated set() in call
  // order — the engine's golden-trajectory reproducibility rests on the
  // internal tree nodes accumulating identical FP deltas, not just on the
  // per-channel values matching. Random subsets, including duplicates and
  // zero weights, against a mirror tree driven by single set() calls.
  Xoshiro256 rng(0xF3A9);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_below(300);
    FenwickTree batched(n), mirror(n);
    // Random non-trivial starting state, built identically on both.
    for (std::size_t i = 0; i < n; ++i) {
      const double w = rng.uniform01() < 0.3 ? 0.0 : rng.uniform01() * 1e12;
      batched.set(i, w);
      mirror.set(i, w);
    }
    for (int round = 0; round < 8; ++round) {
      const std::size_t m = 1 + rng.uniform_below(n);
      std::vector<std::size_t> idx(m);
      std::vector<double> w(m);
      for (std::size_t k = 0; k < m; ++k) {
        idx[k] = rng.uniform_below(n);  // duplicates allowed, apply in order
        w[k] = rng.uniform01() < 0.2 ? 0.0 : rng.uniform01() * 1e12;
      }
      batched.set_many(idx, w);
      for (std::size_t k = 0; k < m; ++k) mirror.set(idx[k], w[k]);
      for (std::size_t i = 0; i <= n; ++i) {
        ASSERT_EQ(batched.prefix_sum(i), mirror.prefix_sum(i))
            << "trial " << trial << " round " << round << " prefix " << i;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batched.value(i), mirror.value(i));
      }
    }
  }
}

TEST(FenwickProperty, SetManyRejectsBadInput) {
  FenwickTree t(4);
  const std::vector<std::size_t> idx{1, 4};
  const std::vector<double> w{1.0, 1.0};
  EXPECT_THROW(t.set_many(idx, w), Error);
  const std::vector<std::size_t> idx2{1, 2};
  const std::vector<double> neg{1.0, -2.0};
  EXPECT_THROW(t.set_many(idx2, neg), Error);
  // Validation is all-or-nothing: the failed batch must not have been
  // partially applied.
  EXPECT_EQ(t.total(), 0.0);
  const std::vector<double> short_w{1.0};
  EXPECT_THROW(t.set_many(idx2, short_w), Error);
}

}  // namespace
}  // namespace semsim
