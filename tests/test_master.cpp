// Tests for the master-equation solver: exact analytic references, cross-
// validation against the Monte-Carlo engine, and state-space behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/current.h"
#include "base/constants.h"
#include "core/engine.h"
#include "master/master_equation.h"
#include "master/state_space.h"
#include "physics/cotunneling.h"

namespace semsim {
namespace {

constexpr double kE = kElementaryCharge;

struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture(double v_src = 0.0, double v_drn = 0.0, double v_gate = 0.0) {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_src));
    c.set_source(drn, Waveform::dc(v_drn));
    c.set_source(gate, Waveform::dc(v_gate));
  }
};

EngineOptions opts(double t) {
  EngineOptions o;
  o.temperature = t;
  return o;
}

// ---- state space -----------------------------------------------------------------

TEST(StateSpace, ContainsNeutralAndChargedStates) {
  SetFixture f(0.02, -0.02, 0.0);
  ElectrostaticModel m(f.c);
  StateSpaceOptions so;
  so.temperature = 1.0;
  StateSpace s(f.c, m, {0.02, -0.02, 0.0}, so);
  EXPECT_GE(s.size(), 3u);  // at least n = -1, 0, +1
  EXPECT_EQ(s.state(s.neutral_index()), ChargeState{0});
  EXPECT_DOUBLE_EQ(s.energy(s.neutral_index()), 0.0);
  EXPECT_GE(s.index_of({1}), 0);
  EXPECT_GE(s.index_of({-1}), 0);
  EXPECT_EQ(s.index_of({99}), -1);
}

TEST(StateSpace, EnergiesMatchChargingFormula) {
  SetFixture f;  // all sources 0
  ElectrostaticModel m(f.c);
  StateSpaceOptions so;
  so.temperature = 10.0;
  StateSpace s(f.c, m, {0.0, 0.0, 0.0}, so);
  const double u = kE * kE / (2.0 * 5e-18);
  // F(n) - F(0) = n^2 u at zero bias.
  for (const int n : {-2, -1, 1, 2}) {
    const int i = s.index_of({n});
    if (i < 0) continue;
    EXPECT_NEAR(s.energy(static_cast<std::size_t>(i)),
                static_cast<double>(n * n) * u, 1e-26)
        << "n = " << n;
  }
}

TEST(StateSpace, RespectsOccupationBound) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  StateSpaceOptions so;
  so.temperature = 300.0;  // hot: everything thermally reachable
  so.occupation_bound = 2;
  StateSpace s(f.c, m, {0.0, 0.0, 0.0}, so);
  EXPECT_EQ(s.size(), 5u);  // n in [-2, 2]
}

TEST(StateSpace, BudgetOverflowThrows) {
  SetFixture f;
  ElectrostaticModel m(f.c);
  StateSpaceOptions so;
  so.temperature = 300.0;
  so.max_states = 3;
  EXPECT_THROW(StateSpace(f.c, m, {0.0, 0.0, 0.0}, so), Error);
}

// ---- master equation vs analytic -----------------------------------------------------

TEST(MasterEq, MatchesThreeStateAnalyticAtZeroTemperature) {
  // Same analytic reference as the engine test: symmetric bias above
  // threshold, Vg = 0 -> I = 2 e Ga Gb / (Gb + 2 Ga).
  const double v_half = 0.02;
  SetFixture f(v_half, -v_half, 0.0);
  MasterEquationSolver me(f.c, opts(0.0));
  const double c_sigma = 5e-18;
  const double u = kE * kE / (2.0 * c_sigma);
  const double r = 1e6;
  const double ga = (kE * v_half - u) / (kE * kE * r);
  const double gb = (kE * (v_half + kE / c_sigma) - u) / (kE * kE * r);
  const double expected = 2.0 * kE * ga * gb / (gb + 2.0 * ga);
  EXPECT_NEAR(me.junction_current(0), expected, 1e-9 * expected);
  EXPECT_NEAR(me.junction_current(1), expected, 1e-9 * expected);
  EXPECT_LT(me.residual(), 1e-9);
}

TEST(MasterEq, EquilibriumIsBoltzmann) {
  const double temp = 20.0;
  SetFixture f;
  MasterEquationSolver me(f.c, opts(temp));
  const double u = kE * kE / (2.0 * 5e-18);
  const double expected = std::exp(-u / (kBoltzmann * temp));
  EXPECT_NEAR(me.probability_of({1}) / me.probability_of({0}), expected,
              1e-6 * expected);
  EXPECT_NEAR(me.probability_of({-1}) / me.probability_of({0}), expected,
              1e-6 * expected);
  EXPECT_NEAR(me.mean_occupation(f.island), 0.0, 1e-12);
  // Currents vanish in equilibrium.
  EXPECT_NEAR(me.junction_current(0), 0.0, 1e-20);
}

TEST(MasterEq, GatePeriodicity) {
  const double period = kE / 3e-18;
  SetFixture f1(0.01, -0.01, 0.013);
  SetFixture f2(0.01, -0.01, 0.013 + period);
  MasterEquationSolver m1(f1.c, opts(5.0));
  MasterEquationSolver m2(f2.c, opts(5.0));
  const double i1 = m1.junction_current(0);
  const double i2 = m2.junction_current(0);
  ASSERT_GT(std::abs(i1), 1e-12);
  EXPECT_NEAR(i2 / i1, 1.0, 1e-3);
  // One full period pumps exactly one extra electron onto the island.
  EXPECT_NEAR(m2.mean_occupation(f2.island) - m1.mean_occupation(f1.island),
              1.0, 1e-3);
}

TEST(MasterEq, CotunnelingBlockadeCurrentMatchesClosedForm) {
  const double v_half = 0.005;
  SetFixture f(v_half, -v_half, 0.0);
  EngineOptions o = opts(0.0);
  o.cotunneling = true;
  MasterEquationSolver me(f.c, o);
  const double u = kE * kE / (2.0 * 5e-18);
  const double e1 = -kE * v_half + u;
  const double gamma =
      cotunneling_rate(-kE * 2.0 * v_half, e1, e1, 1e6, 1e6, 0.0);
  EXPECT_NEAR(me.junction_current(0), kE * gamma, 1e-6 * kE * gamma);
}

TEST(MasterEq, FiniteTemperatureCotunnelingMatchesMonteCarlo) {
  // Inside the blockade at finite T both sequential (thermally activated)
  // and second-order channels flow; the ME sums them exactly, the MC
  // samples them — they must agree.
  const double v_half = 0.006;
  SetFixture fm(v_half, -v_half, 0.0);
  EngineOptions o = opts(3.0);
  o.cotunneling = true;
  MasterEquationSolver me(fm.c, o);
  const double i_me = me.junction_current(0);
  ASSERT_GT(i_me, 0.0);

  SetFixture fe(v_half, -v_half, 0.0);
  o.seed = 17;
  Engine mc(fe.c, o);
  const CurrentEstimate est = measure_mean_current(
      mc, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{3000, 60000, 8});
  EXPECT_NEAR(est.mean / i_me, 1.0, 0.08);
}

TEST(MasterEq, JqpResonanceAppearsInStationarySolution) {
  // The Fig. 5 physics through the second method: an SSET biased at the
  // analytic Cooper-pair resonance carries far more sub-gap current than
  // the same device detuned by a few linewidths.
  const double temp = 0.52, tc = 1.2, rj = 2.1e5;
  const double delta0 =
      0.21e-3 * kElectronVolt / std::tanh(1.74 * std::sqrt(tc / temp - 1.0));

  auto sset_current = [&](double vb, double vg) {
    Circuit c;
    const NodeId src = c.add_external("src");
    const NodeId drn = c.add_external("drn");
    const NodeId gate = c.add_external("gate");
    const NodeId island = c.add_island("island");
    c.add_junction(src, island, rj, 110e-18);
    c.add_junction(island, drn, rj, 110e-18);
    c.add_capacitor(gate, island, 14e-18);
    c.set_background_charge(island, 0.65);
    c.set_superconducting({delta0, tc});
    c.set_source(src, Waveform::dc(vb));
    c.set_source(gate, Waveform::dc(vg));
    EngineOptions o = opts(temp);
    o.qp_table_half_range = 40.0 * delta0;
    MasterEquationSolver me(c, o);
    return std::abs(me.junction_current(0));
  };
  // Resonance bias for Vg = 8 mV computed as in bench/text_jqp_validation.
  const double v_res = 0.451e-3;
  const double on = sset_current(v_res, 0.008);
  const double off = sset_current(v_res + 0.25e-3, 0.008);
  // At 0.52 K the thermally excited quasi-particle background is itself
  // substantial (the paper's singularity-matching modes), so the resonance
  // stands a factor ~2 above it rather than decades.
  EXPECT_GT(on, 1.5 * off);
}

// ---- master equation vs Monte-Carlo ---------------------------------------------------

class MeVsMc : public ::testing::TestWithParam<double> {};

TEST_P(MeVsMc, CurrentsAgreeAcrossBias) {
  const double v_half = GetParam();
  const double temp = 2.0;
  SetFixture fm(v_half, -v_half, 0.005);
  MasterEquationSolver me(fm.c, opts(temp));
  const double i_me = me.junction_current(0);

  SetFixture fe(v_half, -v_half, 0.005);
  EngineOptions eo = opts(temp);
  eo.seed = 77;
  Engine mc(fe.c, eo);
  const CurrentEstimate est = measure_mean_current(
      mc, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{4000, 80000, 8});

  if (std::abs(i_me) < 1e-14) {
    EXPECT_LT(std::abs(est.mean), 1e-12);
  } else {
    EXPECT_NEAR(est.mean / i_me, 1.0, 0.06)
        << "ME " << i_me << " vs MC " << est.mean;
  }
}

INSTANTIATE_TEST_SUITE_P(BiasSweep, MeVsMc,
                         ::testing::Values(0.012, 0.016, 0.02, 0.024, 0.03));

TEST(MeVsMcSc, SupercurrentAgreesAboveGap) {
  // SSET above the quasi-particle threshold: ME with QP + CP channels vs MC.
  const double v_half = 0.019;
  const double delta0 = 0.2e-3 * kElectronVolt;
  SetFixture fm(v_half, -v_half, 0.0);
  fm.c.set_superconducting({delta0, 1.2});
  EngineOptions o = opts(0.3);
  o.qp_table_half_range = 40.0 * delta0;
  MasterEquationSolver me(fm.c, o);
  const double i_me = me.junction_current(0);

  SetFixture fe(v_half, -v_half, 0.0);
  fe.c.set_superconducting({delta0, 1.2});
  o.seed = 5;
  Engine mc(fe.c, o);
  const CurrentEstimate est = measure_mean_current(
      mc, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{2000, 40000, 8});
  ASSERT_GT(std::abs(i_me), 1e-12);
  EXPECT_NEAR(est.mean / i_me, 1.0, 0.08);
}

}  // namespace
}  // namespace semsim
