// Deterministic parallel execution layer (base/thread_pool.h) and the
// bitwise-reproducibility contract of the parallel analysis drivers:
// the same configuration must produce the SAME bytes for every thread
// count, because work units are seeded from (base_seed, unit_index),
// never from thread identity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/driver.h"
#include "analysis/sweep.h"
#include "base/random.h"
#include "base/thread_pool.h"

namespace semsim {
namespace {

// ---- thread pool primitives -----------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, InlineFallbacksCoverEveryIndex) {
  // Null pool and single-thread pools execute inline on the caller.
  std::vector<int> hits(64, 0);
  parallel_for(nullptr, hits.size(), [&](std::size_t i) { ++hits[i]; });
  ThreadPool one(1);
  parallel_for(&one, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 2);
  parallel_for(&one, 0, [&](std::size_t) { FAIL() << "n = 0 ran a unit"; });
}

TEST(ThreadPool, BackpressureBoundsTheQueue) {
  // A tiny queue forces submit() to block rather than grow unboundedly;
  // all tasks must still run to completion.
  ThreadPool pool(2, 2);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, UnitsRunConcurrentlyNotSerialized) {
  // Guards against an accidental submit-and-wait serialization: four tasks
  // rendezvous inside the pool, which is only possible if all four are in
  // flight at once. A scheduling check, not a timing one, so it holds even
  // on a single-core CI machine (blocked tasks do not need a core each).
  constexpr int kTasks = 4;
  ThreadPool pool(kTasks);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool timed_out = false;
  parallel_for(&pool, kTasks, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    if (!cv.wait_for(lock, std::chrono::seconds(10),
                     [&] { return arrived == kTasks; })) {
      timed_out = true;
    }
  });
  EXPECT_EQ(arrived, kTasks);
  EXPECT_FALSE(timed_out) << "tasks never overlapped: pool is serialized";
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Every unit still runs; the rethrown exception is the lowest-index one,
  // independent of which worker saw its failure first.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    parallel_for(&pool, 64, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 7 || i == 3 || i == 50) {
        throw std::runtime_error("unit " + std::to_string(i));
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unit 3");
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(8);
  const std::vector<std::size_t> out = parallel_map<std::size_t>(
      &pool, 257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelExecutor, ZeroMeansHardwareConcurrency) {
  const ParallelExecutor exec(0);
  EXPECT_GE(exec.threads(), 1u);
  const ParallelExecutor one(1);
  EXPECT_EQ(one.threads(), 1u);
}

// ---- stream-seed derivation ----------------------------------------------

TEST(StreamSeeds, DistinctAcrossUnitsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t u = 0; u < 2000; ++u) {
    seen.insert(derive_stream_seed(1, u));
    seen.insert(derive_stream_seed(2, u));
  }
  // No collisions between units of the same run or of sibling runs.
  EXPECT_EQ(seen.size(), 4000u);
  // Unit 0 is not the base seed itself (stream != seed sequence).
  EXPECT_NE(derive_stream_seed(1, 0), 1u);
}

TEST(StreamSeeds, PureFunctionOfSeedAndIndex) {
  EXPECT_EQ(derive_stream_seed(42, 17), derive_stream_seed(42, 17));
  EXPECT_NE(derive_stream_seed(42, 17), derive_stream_seed(42, 18));
  EXPECT_NE(derive_stream_seed(42, 17), derive_stream_seed(43, 17));
}

// ---- bitwise determinism of the analysis drivers -------------------------

constexpr char kSetSweepInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 3 0.0
symm 2
temp 5
record 1 2
jumps 2000
sweep 1 0.01 0.002
)";

std::vector<IvPoint> sweep_at(unsigned threads) {
  const SimulationInput input = parse_simulation_input(kSetSweepInput);
  DriverOptions opt;
  opt.seed = 7;
  opt.threads = threads;
  const DriverResult r = run_simulation(input, opt);
  return r.sweep;
}

TEST(Determinism, IvSweepBitwiseIdenticalAcrossThreadCounts) {
  const std::vector<IvPoint> t1 = sweep_at(1);
  const std::vector<IvPoint> t2 = sweep_at(2);
  const std::vector<IvPoint> t8 = sweep_at(8);
  ASSERT_FALSE(t1.empty());
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    // Bitwise: exact double equality, no tolerance.
    EXPECT_EQ(t1[i].bias, t2[i].bias);
    EXPECT_EQ(t1[i].current, t2[i].current) << "point " << i;
    EXPECT_EQ(t1[i].stderr_mean, t2[i].stderr_mean) << "point " << i;
    EXPECT_EQ(t1[i].current, t8[i].current) << "point " << i;
    EXPECT_EQ(t1[i].stderr_mean, t8[i].stderr_mean) << "point " << i;
  }
}

TEST(Determinism, SweepCountersThreadCountIndependent) {
  const SimulationInput input = parse_simulation_input(kSetSweepInput);
  DriverOptions o1, o8;
  o1.seed = o8.seed = 3;
  o1.threads = 1;
  o8.threads = 8;
  const DriverResult r1 = run_simulation(input, o1);
  const DriverResult r8 = run_simulation(input, o8);
  EXPECT_EQ(r1.counters.units, r8.counters.units);
  EXPECT_EQ(r1.counters.events, r8.counters.events);
  EXPECT_EQ(r1.counters.rate_evaluations, r8.counters.rate_evaluations);
  EXPECT_EQ(r1.counters.flags_raised, r8.counters.flags_raised);
  EXPECT_EQ(r1.counters.full_refreshes, r8.counters.full_refreshes);
  EXPECT_EQ(r1.counters.threads, 1u);
  EXPECT_EQ(r8.counters.threads, 8u);
}

constexpr char kRepeatsInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
temp 5
record 1 2
jumps 1500 6
)";

TEST(Determinism, MultiSeedRepeatsBitwiseIdenticalAcrossThreadCounts) {
  const SimulationInput input = parse_simulation_input(kRepeatsInput);
  std::vector<DriverResult> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    DriverOptions opt;
    opt.seed = 5;
    opt.threads = threads;
    results.push_back(run_simulation(input, opt));
  }
  for (std::size_t k = 1; k < results.size(); ++k) {
    ASSERT_TRUE(results[k].current.has_value());
    EXPECT_EQ(results[0].current->mean, results[k].current->mean);
    EXPECT_EQ(results[0].current->stderr_mean, results[k].current->stderr_mean);
    EXPECT_EQ(results[0].events, results[k].events);
    EXPECT_EQ(results[0].simulated_time, results[k].simulated_time);
  }
}

TEST(Determinism, StabilityMapBitwiseIdenticalAcrossThreadCounts) {
  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);

  EngineOptions o;
  o.temperature = 5.0;

  StabilityMapConfig cfg;
  cfg.bias_node = src;
  cfg.mirror = drn;
  cfg.gate_node = gate;
  cfg.bias_values = {0.005, 0.01, 0.015, 0.02};
  cfg.gate_values = {0.0, 0.01, 0.02, 0.03, 0.04};
  cfg.probes = {{0, 1.0}, {1, 1.0}};
  cfg.measure = CurrentMeasureConfig{200, 1200, 4};

  ParallelSweepConfig par;
  par.base_seed = 11;
  std::vector<std::vector<std::vector<double>>> maps;
  for (const unsigned threads : {1u, 2u, 8u}) {
    const ParallelExecutor exec(threads);
    maps.push_back(run_stability_map(c, o, cfg, exec, par));
  }
  for (std::size_t k = 1; k < maps.size(); ++k) {
    ASSERT_EQ(maps[0].size(), maps[k].size());
    for (std::size_t g = 0; g < maps[0].size(); ++g) {
      ASSERT_EQ(maps[0][g].size(), maps[k][g].size());
      for (std::size_t b = 0; b < maps[0][g].size(); ++b) {
        EXPECT_EQ(maps[0][g][b], maps[k][g][b]) << "g=" << g << " b=" << b;
      }
    }
  }
}

TEST(Determinism, DifferentBaseSeedsDiffer) {
  // The determinism above is not degeneracy: another base seed must change
  // the sampled currents.
  const SimulationInput input = parse_simulation_input(kRepeatsInput);
  DriverOptions a, b;
  a.seed = 5;
  b.seed = 6;
  a.threads = b.threads = 2;
  const DriverResult ra = run_simulation(input, a);
  const DriverResult rb = run_simulation(input, b);
  ASSERT_TRUE(ra.current && rb.current);
  EXPECT_NE(ra.current->mean, rb.current->mean);
}

}  // namespace
}  // namespace semsim
