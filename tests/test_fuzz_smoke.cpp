// Seeded random-mutation fuzz smoke over the service's network-facing
// parsers: io/json (JsonValue::parse under JsonParseLimits) and
// io/envelope (parse_request_envelope). The contract under test is the
// hardened-input rule the daemon relies on: ANY byte string either parses
// or throws a coded semsim::Error — never a crash, never UB, never an
// unbounded allocation. CI runs this binary under ASan/UBSan (asan-ubsan
// and fault-injection jobs), which is where the "no UB" half gets teeth.
//
// This is a smoke test, not a coverage-guided fuzzer: a SplitMix64 chain
// (fixed seed, so failures reproduce exactly) drives byte flips,
// truncations, insertions, and splices of valid request envelopes, plus
// structured garbage from a small JSON-ish alphabet. A few thousand cases
// run in well under a second.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.h"
#include "base/random.h"
#include "io/envelope.h"
#include "io/json.h"

namespace semsim {
namespace {

constexpr char kSweepInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 3 0.0
symm 2
temp 5
record 1 2
jumps 2000
sweep 1 0.01 0.002
)";

std::uint64_t draw(std::uint64_t* state) {
  *state = splitmix64_mix(*state);
  return *state;
}

/// Seed corpus: one valid envelope per verb, covering every payload shape
/// the codec can emit (submit with deadline/client/ensemble/fault
/// included).
std::vector<std::string> corpus() {
  std::vector<std::string> lines;
  {
    RequestEnvelope env;
    env.verb = RequestEnvelope::Verb::kSubmit;
    env.netlist = kSweepInput;
    env.seed = 7;
    env.priority = -2;
    env.deadline_ms = 60000;
    env.client = "fuzz";
    env.stop.max_events = 5000;
    env.retry.strict = true;
    FaultSpec f;
    f.kind = FaultKind::kNanRate;
    f.at_event = 10;
    env.fault.faults.push_back(f);
    env.ensemble.enabled = true;
    env.ensemble.replicas = 8;
    env.partition.enabled = true;
    env.partition.clusters = 4;
    lines.push_back(encode_request_envelope(env));
  }
  for (const auto verb :
       {RequestEnvelope::Verb::kPing, RequestEnvelope::Verb::kStatus,
        RequestEnvelope::Verb::kResult, RequestEnvelope::Verb::kCancel,
        RequestEnvelope::Verb::kStats, RequestEnvelope::Verb::kShutdown}) {
    RequestEnvelope env;
    env.verb = verb;
    env.job_id = 3;
    lines.push_back(encode_request_envelope(env));
  }
  return lines;
}

/// One seeded mutation of `base`: flip / truncate / insert / splice.
std::string mutate(const std::string& base, std::uint64_t* state) {
  std::string s = base;
  const std::uint64_t kind = draw(state) % 4;
  if (s.empty()) return std::string(1, static_cast<char>(draw(state) & 0xFF));
  switch (kind) {
    case 0: {  // flip 1..8 bytes
      const std::uint64_t flips = 1 + draw(state) % 8;
      for (std::uint64_t i = 0; i < flips; ++i) {
        s[draw(state) % s.size()] = static_cast<char>(draw(state) & 0xFF);
      }
      break;
    }
    case 1:  // truncate (torn line)
      s.resize(draw(state) % s.size());
      break;
    case 2: {  // insert noise
      const char noise[] = "{}[]\",:0123456789eE+-.\\tru fals nul\x00\xFF\n";
      const std::uint64_t count = 1 + draw(state) % 16;
      for (std::uint64_t i = 0; i < count; ++i) {
        s.insert(draw(state) % (s.size() + 1), 1,
                 noise[draw(state) % (sizeof(noise) - 1)]);
      }
      break;
    }
    default: {  // splice two halves at random cut points
      const std::string t = base;
      s = s.substr(0, draw(state) % (s.size() + 1)) +
          t.substr(draw(state) % (t.size() + 1));
      break;
    }
  }
  return s;
}

/// The property: parse or coded throw. Anything else (other exception
/// types, crash, sanitizer report) fails the test / the CI job.
void expect_coded(const std::string& line, const JsonParseLimits& limits) {
  try {
    parse_request_envelope(line, limits);
  } catch (const Error& e) {
    EXPECT_NE(e.code(), ErrorCode::kNone) << "uncoded error for: " << line;
  }
  try {
    JsonValue::parse(line, limits);
  } catch (const Error& e) {
    EXPECT_NE(e.code(), ErrorCode::kNone);
  }
}

TEST(FuzzSmoke, MutatedEnvelopesParseOrThrowCodedErrors) {
  const std::vector<std::string> seeds = corpus();
  JsonParseLimits limits;
  limits.max_bytes = 1 << 20;
  limits.max_depth = 64;
  std::uint64_t state = derive_stream_seed(0xF022ULL, 1);
  for (int round = 0; round < 2000; ++round) {
    const std::string& base = seeds[draw(&state) % seeds.size()];
    expect_coded(mutate(base, &state), limits);
  }
}

TEST(FuzzSmoke, RandomGarbageNeverCrashesTheParsers) {
  JsonParseLimits limits;
  limits.max_bytes = 4096;
  limits.max_depth = 16;
  std::uint64_t state = derive_stream_seed(0xF022ULL, 2);
  const char alphabet[] = "{}[]\":,0123456789.eE+-truefalsn \\\"\t\n\x01\xFF";
  for (int round = 0; round < 2000; ++round) {
    std::string s(draw(&state) % 256, ' ');
    for (char& c : s) {
      c = alphabet[draw(&state) % (sizeof(alphabet) - 1)];
    }
    expect_coded(s, limits);
  }
}

TEST(FuzzSmoke, PartitionObjectRoundTripsAndRejectsUnknownFields) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kSubmit;
  env.netlist = kSweepInput;
  env.seed = 7;
  env.partition.enabled = true;
  env.partition.clusters = 4;
  const std::string line = encode_request_envelope(env);

  const RequestEnvelope back = parse_request_envelope(line, {});
  EXPECT_TRUE(back.partition.enabled);
  EXPECT_EQ(back.partition.clusters, 4u);

  // The partition object is parsed STRICTLY: a typo'd knob must reject the
  // request instead of silently running unpartitioned (io/envelope.cpp).
  const std::string marker = "\"partition\":{";
  const std::size_t at = line.find(marker);
  ASSERT_NE(at, std::string::npos) << line;
  std::string bogus = line;
  bogus.insert(at + marker.size(), "\"bogus\":1,");
  try {
    parse_request_envelope(bogus, {});
    FAIL() << "unknown partition field was accepted: " << bogus;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseSyntax);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(FuzzSmoke, PathologicalShapesStayBounded) {
  JsonParseLimits limits;
  limits.max_bytes = 64 << 10;
  limits.max_depth = 32;
  // Deep nesting, long strings, huge numbers, unterminated everything —
  // the known parser stressors, each must come back as a coded Error.
  const std::vector<std::string> shapes = {
      std::string(10000, '['),
      "{\"a\":" + std::string(10000, '{'),
      "\"" + std::string(50000, 'x'),
      std::string(200, '-') + "1e99999",
      "{\"schema\":\"semsim.request/v1\",\"verb\":\"submit\",\"seed\":1e400}",
      "[[[[[[[[[[\"\\u00",
  };
  for (const std::string& s : shapes) expect_coded(s, limits);
}

}  // namespace
}  // namespace semsim
