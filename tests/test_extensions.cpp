// Tests for the gate-level netlist parser and the counting-statistics
// (Fano factor) analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/noise.h"
#include "base/constants.h"
#include "core/engine.h"
#include "logic/elaborate.h"
#include "logic/logic_parser.h"
#include "netlist/circuit.h"

namespace semsim {
namespace {

constexpr double kE = kElementaryCharge;

// ---- logic netlist parser -----------------------------------------------------

const char* kFullAdderNetlist = R"(
# gate-level full adder (paper Sec. III-B logic-representation input)
input a b cin
xor  t    a b
xor  sum  t cin
and  g    a b
and  p    cin t
or   cout g p
output sum cout
)";

TEST(LogicParser, ParsesFullAdderAndEvaluatesCorrectly) {
  const ParsedLogic p = parse_logic_netlist(std::string(kFullAdderNetlist));
  ASSERT_EQ(p.netlist.inputs().size(), 3u);
  ASSERT_EQ(p.netlist.outputs().size(), 2u);
  for (int v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, cin = v & 4;
    const auto r = p.netlist.evaluate({a, b, cin});
    const int total = int(a) + int(b) + int(cin);
    EXPECT_EQ(r[static_cast<std::size_t>(p.netlist.outputs()[0])], total % 2 == 1);
    EXPECT_EQ(r[static_cast<std::size_t>(p.netlist.outputs()[1])], total >= 2);
  }
}

TEST(LogicParser, ParsedNetlistElaboratesToSetCircuit) {
  const ParsedLogic p = parse_logic_netlist(std::string(kFullAdderNetlist));
  ElaboratedCircuit e = elaborate(p.netlist, SetLogicParams{});
  EXPECT_EQ(e.circuit().junction_count(), 100u);  // the paper's full adder!
  e.circuit().validate();
}

TEST(LogicParser, LatchStatement) {
  const ParsedLogic p = parse_logic_netlist(std::string(R"(
input d en
latch q d en
inv   qn q
output q qn
)"));
  const auto r1 = p.netlist.evaluate({true, true});
  EXPECT_TRUE(r1[static_cast<std::size_t>(p.netlist.outputs()[0])]);
  EXPECT_FALSE(r1[static_cast<std::size_t>(p.netlist.outputs()[1])]);
}

TEST(LogicParser, NamesAreCaseInsensitive) {
  const ParsedLogic p = parse_logic_netlist(std::string(
      "input A b\nNAND y A B\noutput Y\n"));
  EXPECT_EQ(p.netlist.outputs().size(), 1u);
}

TEST(LogicParser, ErrorPaths) {
  // use before definition
  EXPECT_THROW(parse_logic_netlist(std::string("input a\ninv y b\noutput y\n")),
               ParseError);
  // duplicate definition
  EXPECT_THROW(
      parse_logic_netlist(std::string("input a a\ninv y a\noutput y\n")),
      ParseError);
  // wrong arity
  EXPECT_THROW(
      parse_logic_netlist(std::string("input a b\nnand y a\noutput y\n")),
      ParseError);
  // unknown op
  EXPECT_THROW(
      parse_logic_netlist(std::string("input a\nfoo y a\noutput y\n")),
      ParseError);
  // no outputs
  EXPECT_THROW(parse_logic_netlist(std::string("input a\ninv y a\n")),
               ParseError);
  // undefined output
  EXPECT_THROW(parse_logic_netlist(std::string("input a\noutput z\n")),
               ParseError);
  // line numbers in messages
  try {
    parse_logic_netlist(std::string("input a\n\nbogus y a\noutput y\n"));
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// ---- Fano factor ----------------------------------------------------------------

struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture(double v_src, double v_drn, double v_gate) {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_src));
    c.set_source(drn, Waveform::dc(v_drn));
    c.set_source(gate, Waveform::dc(v_gate));
  }
};

TEST(Fano, PoissonianCotunnelingGivesFanoOne) {
  // Deep blockade at T = 0 with cotunneling: a pure Poisson process.
  SetFixture f(0.005, -0.005, 0.0);
  EngineOptions o;
  o.temperature = 0.0;
  o.cotunneling = true;
  o.seed = 3;
  Engine e(f.c, o);
  FanoConfig cfg;
  cfg.junction = 0;
  // ~40 events expected per window at this rate.
  const double rate = e.total_rate();
  ASSERT_GT(rate, 0.0);
  cfg.window_time = 40.0 / rate;
  cfg.windows = 300;
  const FanoEstimate est = measure_fano(e, cfg);
  ASSERT_EQ(est.windows, 300u);
  EXPECT_NEAR(est.fano, 1.0, 0.15);
  // Electrons flow drn -> src, i.e. +1 charge unit per event through the
  // (src, island) junction in its a -> b orientation.
  EXPECT_NEAR(est.mean_per_window, 40.0, 6.0);
}

TEST(Fano, SymmetricTwoStateCycleSuppressesNoiseToHalf) {
  // Gate at the degeneracy point, small symmetric bias: entry and exit
  // rates are equal and the textbook result is F = 1/2.
  const double vg_deg = kE / (2.0 * 5e-18) / 0.6;
  SetFixture f(0.005, -0.005, vg_deg);
  EngineOptions o;
  o.temperature = 0.0;
  o.seed = 7;
  Engine e(f.c, o);
  const double rate = e.total_rate();
  ASSERT_GT(rate, 0.0);
  FanoConfig cfg;
  cfg.junction = 0;
  cfg.window_time = 120.0 / rate;
  cfg.windows = 400;
  const FanoEstimate est = measure_fano(e, cfg);
  ASSERT_EQ(est.windows, 400u);
  EXPECT_NEAR(est.fano, 0.5, 0.08);
  EXPECT_GT(std::abs(est.current), 1e-11);
}

TEST(Fano, StuckEngineReportsNoWindows) {
  SetFixture f(0.0, 0.0, 0.0);
  EngineOptions o;
  o.temperature = 0.0;
  Engine e(f.c, o);
  FanoConfig cfg;
  cfg.junction = 0;
  cfg.window_time = 1e-9;
  cfg.windows = 10;
  cfg.warmup_events = 10;
  const FanoEstimate est = measure_fano(e, cfg);
  // Blocked circuit: windows elapse (time passes) but nothing is counted.
  EXPECT_DOUBLE_EQ(est.mean_per_window, 0.0);
  EXPECT_DOUBLE_EQ(est.current, 0.0);
}

TEST(Fano, ValidatesConfig) {
  SetFixture f(0.005, -0.005, 0.0);
  EngineOptions o;
  o.temperature = 1.0;
  Engine e(f.c, o);
  FanoConfig bad;
  bad.window_time = 0.0;
  EXPECT_THROW(measure_fano(e, bad), Error);
  bad.window_time = 1e-9;
  bad.windows = 1;
  EXPECT_THROW(measure_fano(e, bad), Error);
}

}  // namespace
}  // namespace semsim
