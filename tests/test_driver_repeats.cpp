// The paper's `jumps <count> <repeats>`: independent reruns averaged.
#include <gtest/gtest.h>

#include "analysis/driver.h"
#include "netlist/parser.h"

namespace semsim {
namespace {

SimulationInput set_input(int repeats) {
  return parse_simulation_input(std::string(R"(
junc 1 1 4 1meg 1e-18
junc 2 4 2 1meg 1e-18
cap 3 4 3e-18
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
num ext 3
num nodes 4
temp 5
record 1 2
jumps 8000 )") + std::to_string(repeats) + "\n");
}

TEST(DriverRepeats, MultipleRepeatsAverageAndTightenError) {
  const DriverResult one = run_simulation(set_input(1), {5, true});
  const DriverResult nine = run_simulation(set_input(9), {5, true});
  ASSERT_TRUE(one.current && nine.current);
  // Same device: the averaged estimate agrees with the single run.
  EXPECT_NEAR(nine.current->mean / one.current->mean, 1.0, 0.05);
  // Nine repeats executed nine times the events.
  EXPECT_GT(nine.events, 5 * one.events);
  EXPECT_GT(nine.current->stderr_mean, 0.0);
}

TEST(DriverRepeats, RepeatsAreIndependentSeeds) {
  // With repeats the result must not be a deterministic copy of run one:
  // the standard error across repeats is finite and sane.
  const DriverResult r = run_simulation(set_input(5), {3, true});
  ASSERT_TRUE(r.current);
  EXPECT_GT(r.current->stderr_mean, 1e-13);
  EXPECT_LT(r.current->stderr_mean, 0.05 * std::abs(r.current->mean));
}

}  // namespace
}  // namespace semsim
