// semsim_obs accumulators (src/obs/accumulator.h) against closed forms:
// iid streams must recover mean/variance with tau_int ~ 0.5, an AR(1)
// process with known phi must recover the analytic autocorrelation time,
// and the jackknife error of a ratio must match the delta method.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "base/error.h"
#include "obs/accumulator.h"
#include "obs/checkpoint.h"

namespace semsim {
namespace {

// Deterministic Gaussian stream (std::mt19937_64 is bit-exact across
// platforms; normal_distribution is not, but these are statistical tests
// with wide tolerances, not bitwise ones).
std::vector<double> gaussian_stream(std::size_t n, double mu, double sigma,
                                    std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::normal_distribution<double> dist(mu, sigma);
  std::vector<double> out(n);
  for (double& x : out) x = dist(gen);
  return out;
}

TEST(Binning, IidGaussianRecoversMomentsAndTauHalf) {
  const double mu = 1.5, sigma = 0.7;
  const std::size_t n = 1 << 16;
  BinningAccumulator acc;
  for (const double x : gaussian_stream(n, mu, sigma, 12345)) acc.add(x);

  ASSERT_EQ(acc.count(), n);
  const double err = sigma / std::sqrt(static_cast<double>(n));
  EXPECT_NEAR(acc.mean(), mu, 5.0 * err);
  EXPECT_NEAR(acc.variance(), sigma * sigma, 0.05 * sigma * sigma);
  EXPECT_NEAR(acc.naive_error(), err, 0.05 * err);
  // iid: the binned error must agree with the naive one (no plateau rise)
  // and tau_int must sit at the uncorrelated value 1/2.
  EXPECT_GT(acc.tau_int(), 0.3);
  EXPECT_LT(acc.tau_int(), 0.8);
  EXPECT_LT(acc.rel_error(), 2.0 * err / mu * std::sqrt(2.0 * 0.8));
}

TEST(Binning, Ar1RecoversAnalyticAutocorrelationTime) {
  // x_{k+1} = phi x_k + sqrt(1 - phi^2) xi_k has autocovariance phi^|l|,
  // giving tau_int = (1/2) (1 + phi) / (1 - phi) in this header's
  // normalization (1/2 for iid) and a true error of the mean
  // sqrt(var / N * (1 + phi) / (1 - phi)).
  const double phi = 0.9;
  const std::size_t n = 1 << 18;
  std::mt19937_64 gen(999);
  std::normal_distribution<double> dist(0.0, 1.0);
  BinningAccumulator acc;
  double x = 0.0;
  const double drive = std::sqrt(1.0 - phi * phi);
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + drive * dist(gen);
    acc.add(x);
  }

  const double tau_true = 0.5 * (1.0 + phi) / (1.0 - phi);  // 9.5
  EXPECT_NEAR(acc.tau_int(), tau_true, 0.25 * tau_true);
  const double err_true =
      std::sqrt(acc.variance() / static_cast<double>(n) * (1.0 + phi) /
                (1.0 - phi));
  EXPECT_NEAR(acc.binned_error(), err_true, 0.25 * err_true);
  // The naive error must underestimate by ~ sqrt(2 tau): the whole point.
  EXPECT_LT(acc.naive_error(), 0.5 * acc.binned_error());
}

TEST(Binning, LevelStructureHalvesBinCounts) {
  BinningAccumulator acc;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) acc.add(static_cast<double>(i % 7));
  ASSERT_GE(acc.level_count(), 9u);
  for (std::size_t l = 0; l < acc.level_count(); ++l) {
    EXPECT_EQ(acc.level_bins(l), n >> l) << "level " << l;
  }
}

TEST(Binning, EmptyAndDegenerateStreamsAreSafe) {
  BinningAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.binned_error(), 0.0);
  EXPECT_EQ(acc.tau_int(), 0.5);
  EXPECT_EQ(acc.rel_error(), 0.0);
  acc.add(3.0);
  EXPECT_EQ(acc.mean(), 3.0);
  EXPECT_EQ(acc.naive_error(), 0.0);  // one sample: no variance estimate
  // Exactly-zero observable with zero spread: rel_error 0, not NaN/inf.
  BinningAccumulator zeros;
  for (int i = 0; i < 256; ++i) zeros.add(0.0);
  EXPECT_EQ(zeros.rel_error(), 0.0);
}

TEST(Binning, MergeMatchesConcatenationAndIsDeterministic) {
  // Three unit streams merged in index order must reproduce the sequential
  // statistics of the concatenated stream (exactly for count, to rounding
  // for the moments), and repeating the merge must be bitwise identical.
  const auto s1 = gaussian_stream(4096, 0.3, 1.0, 1);
  const auto s2 = gaussian_stream(4096, 0.3, 1.0, 2);
  const auto s3 = gaussian_stream(4096, 0.3, 1.0, 3);

  BinningAccumulator sequential;
  for (const auto* s : {&s1, &s2, &s3}) {
    for (const double x : *s) sequential.add(x);
  }

  const auto merged_once = [&] {
    BinningAccumulator a1, a2, a3;
    for (const double x : s1) a1.add(x);
    for (const double x : s2) a2.add(x);
    for (const double x : s3) a3.add(x);
    a1.merge(a2);
    a1.merge(a3);
    return a1;
  };
  const BinningAccumulator ma = merged_once();
  const BinningAccumulator mb = merged_once();

  // Bitwise determinism of the merge itself.
  BinaryWriter wa, wb;
  ma.encode(wa);
  mb.encode(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());

  EXPECT_EQ(ma.count(), sequential.count());
  EXPECT_NEAR(ma.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(ma.variance(), sequential.variance(), 1e-9);
  // Higher binning levels lose only the dropped cross-boundary half-bins.
  EXPECT_NEAR(ma.binned_error(), sequential.binned_error(),
              0.2 * sequential.binned_error());
}

TEST(Binning, SerializationRoundTripIsExact) {
  BinningAccumulator acc;
  for (const double x : gaussian_stream(777, 2.0, 0.5, 42)) acc.add(x);
  BinaryWriter w;
  acc.encode(w);
  BinaryReader r(w.bytes());
  const BinningAccumulator back = BinningAccumulator::decode(r);
  r.require_done();

  BinaryWriter w2;
  back.encode(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  EXPECT_EQ(back.count(), acc.count());
  EXPECT_EQ(back.mean(), acc.mean());
  EXPECT_EQ(back.binned_error(), acc.binned_error());
  // Carries survive: adding the same next sample to both stays identical.
  BinningAccumulator a2 = back, a1 = acc;
  a1.add(1.25);
  a2.add(1.25);
  EXPECT_EQ(a1.mean(), a2.mean());
  EXPECT_EQ(a1.level_count(), a2.level_count());
}

TEST(Binning, DecodeRejectsCorruptLevelCount) {
  BinaryWriter w;
  w.u64(BinningAccumulator::kMaxLevels + 1);
  BinaryReader r(w.bytes());
  EXPECT_THROW(BinningAccumulator::decode(r), Error);
}

TEST(Jackknife, RatioErrorMatchesDeltaMethod) {
  // f = <a> / <b> with independent a ~ N(2, 0.1^2), b ~ N(4, 0.2^2).
  // Delta method: var f = f^2 (var_a / (N <a>^2) + var_b / (N <b>^2)).
  const std::size_t n = 1 << 14;
  std::mt19937_64 gen(2024);
  std::normal_distribution<double> da(2.0, 0.1), db(4.0, 0.2);
  JackknifeAccumulator acc(2);
  for (std::size_t i = 0; i < n; ++i) acc.add(da(gen), db(gen));

  const auto ratio = [](const std::vector<double>& m) { return m[0] / m[1]; };
  const double f = acc.estimate(ratio);
  EXPECT_NEAR(f, 0.5, 0.01);
  const double ma = acc.component_mean(0);
  const double mb = acc.component_mean(1);
  const double delta_err =
      std::fabs(f) * std::sqrt((0.1 * 0.1) / (n * ma * ma) +
                               (0.2 * 0.2) / (n * mb * mb));
  const double jk_err = acc.error(ratio);
  EXPECT_NEAR(jk_err, delta_err, 0.25 * delta_err);
}

TEST(Jackknife, MergeAndSerializationRoundTrip) {
  std::mt19937_64 gen(5);
  std::normal_distribution<double> dist(1.0, 0.3);
  JackknifeAccumulator a(2, 8), b(2, 8);
  for (int i = 0; i < 400; ++i) a.add(dist(gen), dist(gen) + 1.0);
  for (int i = 0; i < 300; ++i) b.add(dist(gen), dist(gen) + 1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 700u);

  BinaryWriter w;
  a.encode(w);
  BinaryReader r(w.bytes());
  const JackknifeAccumulator back = JackknifeAccumulator::decode(r);
  r.require_done();
  const auto ratio = [](const std::vector<double>& m) { return m[0] / m[1]; };
  EXPECT_EQ(back.count(), a.count());
  EXPECT_EQ(back.estimate(ratio), a.estimate(ratio));
  EXPECT_EQ(back.error(ratio), a.error(ratio));

  JackknifeAccumulator other(3, 8);
  EXPECT_THROW(a.merge(other), Error);
}

TEST(ObservableSet, RegistryMergeAndRoundTrip) {
  ObservableSet set;
  for (int i = 0; i < 100; ++i) {
    set["current"].add(0.01 * i);
    set["charge"].add(1.0);
  }
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains("current"));
  EXPECT_FALSE(set.contains("voltage"));
  ASSERT_NE(set.find("charge"), nullptr);
  EXPECT_EQ(set.find("charge")->count(), 100u);

  ObservableSet more;
  more["current"].add(0.5);
  more["voltage"].add(2.0);
  set.merge(more);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.find("current")->count(), 101u);

  BinaryWriter w;
  set.encode(w);
  BinaryReader r(w.bytes());
  const ObservableSet back = ObservableSet::decode(r);
  r.require_done();
  EXPECT_EQ(back.size(), set.size());
  EXPECT_EQ(back.find("current")->mean(), set.find("current")->mean());
  // Iteration order is name order (std::map): deterministic encodes.
  BinaryWriter w2;
  back.encode(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

}  // namespace
}  // namespace semsim
