// Tests for the analysis helpers (current estimation, sweeps, delay
// extraction) and the io table writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/current.h"
#include "analysis/delay.h"
#include "analysis/sweep.h"
#include "base/constants.h"
#include "io/table_writer.h"
#include "netlist/circuit.h"

namespace semsim {
namespace {

struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture(double v_src = 0.0, double v_drn = 0.0) {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_src));
    c.set_source(drn, Waveform::dc(v_drn));
  }
};

EngineOptions opts(double t, std::uint64_t seed = 1) {
  EngineOptions o;
  o.temperature = t;
  o.seed = seed;
  return o;
}

// ---- current estimation ------------------------------------------------------

TEST(Current, StuckEngineReportsZero) {
  SetFixture f;  // zero bias, T = 0: deep blockade
  Engine e(f.c, opts(0.0));
  const CurrentEstimate est =
      measure_junction_current(e, 0, CurrentMeasureConfig{10, 100, 4});
  EXPECT_DOUBLE_EQ(est.mean, 0.0);
  EXPECT_EQ(est.events, 0u);
}

TEST(Current, ProbeSignFlipsCurrent) {
  SetFixture fa(0.02, -0.02), fb(0.02, -0.02);
  Engine ea(fa.c, opts(0.0, 3));
  Engine eb(fb.c, opts(0.0, 3));
  const CurrentMeasureConfig mc{1000, 20000, 4};
  const double ip = measure_mean_current(ea, {{0, 1.0}}, mc).mean;
  const double in = measure_mean_current(eb, {{0, -1.0}}, mc).mean;
  EXPECT_NEAR(ip, -in, 1e-15);
  EXPECT_GT(ip, 0.0);
}

TEST(Current, RejectsEmptyProbes) {
  SetFixture f(0.02, -0.02);
  Engine e(f.c, opts(0.0));
  EXPECT_THROW(measure_mean_current(e, {}, CurrentMeasureConfig{}), Error);
}

TEST(Current, StderrShrinksWithMoreEvents) {
  SetFixture fa(0.02, -0.02), fb(0.02, -0.02);
  Engine ea(fa.c, opts(1.0, 5));
  Engine eb(fb.c, opts(1.0, 5));
  const double s_small =
      measure_mean_current(ea, {{0, 1.0}}, CurrentMeasureConfig{500, 4000, 8})
          .stderr_mean;
  const double s_big =
      measure_mean_current(eb, {{0, 1.0}}, CurrentMeasureConfig{500, 64000, 8})
          .stderr_mean;
  EXPECT_LT(s_big, s_small);
}

// ---- sweeps --------------------------------------------------------------------

TEST(Sweep, ValidatesConfig) {
  SetFixture f;
  Engine e(f.c, opts(1.0));
  IvSweepConfig cfg;
  cfg.swept = f.src;
  cfg.from = 0.0;
  cfg.to = 0.01;
  cfg.step = 0.0;  // invalid
  cfg.probes = {{0, 1.0}};
  EXPECT_THROW(run_iv_sweep(e, cfg), Error);
  cfg.step = 0.005;
  cfg.probes.clear();
  EXPECT_THROW(run_iv_sweep(e, cfg), Error);
}

TEST(Sweep, PointCountAndBiasGrid) {
  SetFixture f;
  Engine e(f.c, opts(1.0, 7));
  IvSweepConfig cfg;
  cfg.swept = f.src;
  cfg.mirror = f.drn;
  cfg.from = -0.01;
  cfg.to = 0.01;
  cfg.step = 0.005;
  cfg.probes = {{0, 1.0}};
  cfg.measure = CurrentMeasureConfig{100, 1000, 2};
  const auto pts = run_iv_sweep(e, cfg);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().bias, -0.01);
  EXPECT_NEAR(pts.back().bias, 0.01, 1e-12);
}

TEST(Sweep, StabilityMapShape) {
  SetFixture f;
  Engine e(f.c, opts(1.0, 9));
  StabilityMapConfig cfg;
  cfg.bias_node = f.src;
  cfg.mirror = f.drn;
  cfg.gate_node = f.gate;
  cfg.bias_values = {0.005, 0.02, 0.04};
  cfg.gate_values = {0.0, 0.01};
  cfg.probes = {{0, 1.0}, {1, 1.0}};
  cfg.measure = CurrentMeasureConfig{200, 2000, 2};
  const auto map = run_stability_map(e, cfg);
  ASSERT_EQ(map.size(), 2u);
  ASSERT_EQ(map[0].size(), 3u);
  for (const auto& row : map) {
    for (const double v : row) EXPECT_GE(v, 0.0);  // magnitudes
    // conduction grows with bias
    EXPECT_LT(row[0], row[2]);
  }
}

// ---- delay ----------------------------------------------------------------------

TEST(Delay, RequiresSaneWindow) {
  SetFixture f;
  Engine e(f.c, opts(1.0));
  DelayConfig cfg;
  cfg.output = f.island;
  cfg.t_step = 1e-9;
  cfg.t_max = 1e-9;  // not after t_step
  EXPECT_THROW(measure_propagation_delay(e, cfg), Error);
}

TEST(Delay, NanWhenNoCrossing) {
  // Island potential never reaches an absurd threshold.
  SetFixture f(0.02, -0.02);
  Engine e(f.c, opts(1.0, 3));
  DelayConfig cfg;
  cfg.output = f.island;
  cfg.t_step = 1e-10;
  cfg.v_threshold = 10.0;  // volts — unreachable
  cfg.rising = true;
  cfg.t_max = 5e-9;
  EXPECT_FALSE(delay_valid(measure_propagation_delay(e, cfg)));
}

TEST(Delay, DetectsStepOnIsland) {
  // The island's mean potential follows a gate step through the 0.6 gain;
  // detection threshold halfway.
  SetFixture f(0.02, -0.02);
  f.c.set_source(f.gate, Waveform::step(0.0, 0.05, 5e-9));
  Engine e(f.c, opts(4.0, 11));
  DelayConfig cfg;
  cfg.output = f.island;
  cfg.t_step = 5e-9;
  cfg.v_threshold = 0.015;
  cfg.rising = true;
  cfg.smoothing_tau = 2e-10;
  cfg.t_max = 100e-9;
  const double d = measure_propagation_delay(e, cfg);
  ASSERT_TRUE(delay_valid(d));
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 50e-9);
}

// ---- TableWriter ------------------------------------------------------------------

TEST(TableWriter, FormatsHeaderCommentsAndRows) {
  TableWriter t({"x", "y"});
  t.add_comment("hello");
  t.add_row({1.0, 2.5});
  t.add_row({-3.0, 4e-9});
  std::ostringstream os;
  t.write(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("# hello\n"), std::string::npos);
  EXPECT_NE(s.find("# x\ty\n"), std::string::npos);
  EXPECT_NE(s.find("1\t2.5\n"), std::string::npos);
  EXPECT_NE(s.find("-3\t4e-09\n"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableWriter, RejectsBadShapes) {
  EXPECT_THROW(TableWriter({}), Error);
  TableWriter t({"x", "y"});
  EXPECT_THROW(t.add_row({1.0}), Error);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), Error);
}

TEST(TableWriter, WritesFile) {
  TableWriter t({"a"});
  t.add_row({42.0});
  const std::string path = "/tmp/semsim_tablewriter_test.tsv";
  t.write_file(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "# a");
  std::getline(f, line);
  EXPECT_EQ(line, "42");
  std::remove(path.c_str());
  EXPECT_THROW(t.write_file("/nonexistent_dir_xyz/out.tsv"), Error);
}

}  // namespace
}  // namespace semsim
