// Golden bitwise-trajectory tests: fixed-seed event sequences and sweep
// tables hashed bit-for-bit and pinned to constants generated on the
// pre-SoA-refactor engine (PR 3). Any change to the hot path — potential
// cache updates, rate evaluation order, Fenwick accumulation, sampling —
// that alters a single bit of a single waiting time or channel choice
// flips these hashes.
//
// The hashes cover: SET and SSET circuits, adaptive and non-adaptive
// solvers, cotunneling, waveform (breakpoint) sources, a multi-island
// chain, and parallel sweep tables at 1 and 8 threads (which must also be
// identical to each other, per the determinism contract).
//
// If a hash mismatch is INTENDED (a deliberate trajectory-affecting
// change), regenerate the constants by running this binary and copying the
// "actual" values from the failure output — and say so in the PR.
#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/sweep.h"
#include "base/constants.h"
#include "base/thread_pool.h"
#include "core/engine.h"
#include "netlist/circuit.h"
#include "obs/checkpoint.h"

namespace semsim {
namespace {

// ---- circuits -------------------------------------------------------------

struct SetCircuit {
  Circuit c;
  NodeId src, drn, gate, island;
  SetCircuit(double v_src, double v_drn, double v_gate) {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_src));
    c.set_source(drn, Waveform::dc(v_drn));
    c.set_source(gate, Waveform::dc(v_gate));
  }
};

/// Chain of isolated SET stages (the Fig. 4 scenario): multi-island
/// adaptive flag propagation plus gate-capacitor coupling.
Circuit make_chain(int stages) {
  Circuit c;
  const NodeId vp = c.add_external("vp");
  const NodeId vn = c.add_external("vn");
  c.set_source(vp, Waveform::dc(0.01));
  c.set_source(vn, Waveform::dc(-0.01));
  for (int s = 0; s < stages; ++s) {
    const NodeId i = c.add_island();
    c.add_junction(vp, i, 1e6, 1e-18);
    c.add_junction(i, vn, 1e6, 1e-18);
    c.add_capacitor(i, Circuit::kGroundNode, 20e-18);
  }
  return c;
}

// ---- hashing --------------------------------------------------------------

/// Runs up to `n` events and folds every field of every executed event —
/// including the IEEE-754 bit patterns of dt/time/charge — into one hash.
std::uint64_t trajectory_hash(Engine& engine, int n) {
  BinaryWriter w;
  Event ev;
  for (int i = 0; i < n; ++i) {
    if (!engine.step(&ev)) break;
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.u64(ev.index);
    w.i64(ev.from);
    w.i64(ev.to);
    w.f64(ev.charge);
    w.f64(ev.dt);
    w.f64(ev.time);
  }
  w.f64(engine.time());
  w.u64(engine.event_count());
  return fnv1a64(w.bytes().data(), w.bytes().size());
}

std::uint64_t sweep_hash(const std::vector<IvPoint>& points) {
  BinaryWriter w;
  for (const IvPoint& p : points) {
    w.f64(p.bias);
    w.f64(p.current);
    w.f64(p.stderr_mean);
    w.f64(p.rel_error);
    w.f64(p.tau_int);
    w.u64(p.events);
  }
  return fnv1a64(w.bytes().data(), w.bytes().size());
}

EngineOptions engine_opts(double temperature, bool adaptive,
                          std::uint64_t seed) {
  EngineOptions o;
  o.temperature = temperature;
  o.adaptive.enabled = adaptive;
  o.seed = seed;
  return o;
}

void expect_golden(std::uint64_t actual, std::uint64_t expected,
                   const char* what) {
  EXPECT_EQ(actual, expected) << what << ": trajectory changed; actual hash 0x"
                              << std::hex << actual;
}

// ---- pinned trajectory hashes ---------------------------------------------

TEST(GoldenTrajectory, SetAdaptive) {
  SetCircuit f(0.02, -0.02, 0.0);
  Engine e(f.c, engine_opts(1.0, true, 12345));
  expect_golden(trajectory_hash(e, 4000), 0x3dff4b333f4fd0abULL, "SET adaptive");
}

TEST(GoldenTrajectory, SetNonAdaptive) {
  SetCircuit f(0.02, -0.02, 0.0);
  Engine e(f.c, engine_opts(1.0, false, 12345));
  expect_golden(trajectory_hash(e, 4000), 0x613495ea4188af1bULL, "SET non-adaptive");
}

TEST(GoldenTrajectory, SetColdAdaptive) {
  // T = 0: the orthodox-rate branch cut and deep-blockade zero rates.
  SetCircuit f(0.05, -0.05, 0.004);
  Engine e(f.c, engine_opts(0.0, true, 777));
  expect_golden(trajectory_hash(e, 4000), 0xd6058553262399e6ULL, "SET cold adaptive");
}

TEST(GoldenTrajectory, SsetAdaptiveRequested) {
  // Superconducting circuits route through the non-adaptive path even when
  // adaptive is requested; QP + Cooper-pair channels.
  SetCircuit f(0.002, -0.002, 0.0);
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  Engine e(f.c, engine_opts(0.3, true, 999));
  expect_golden(trajectory_hash(e, 2000), 0x3bf10ff57b1bc5acULL, "SSET adaptive-requested");
}

TEST(GoldenTrajectory, SsetNonAdaptive) {
  SetCircuit f(0.002, -0.002, 0.0);
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  Engine e(f.c, engine_opts(0.3, false, 999));
  expect_golden(trajectory_hash(e, 2000), 0x3bf10ff57b1bc5acULL, "SSET non-adaptive");
}

TEST(GoldenTrajectory, CotunnelingAdaptive) {
  // Sub-threshold bias: cotunneling channels carry the current; the SE
  // channels stay adaptive, cotunneling recomputes non-adaptively.
  SetCircuit f(0.004, -0.004, 0.0);
  EngineOptions o = engine_opts(0.0, true, 2024);
  o.cotunneling = true;
  Engine e(f.c, o);
  expect_golden(trajectory_hash(e, 1000), 0xa5b70a4579f357aaULL, "cotunneling adaptive");
}

TEST(GoldenTrajectory, PulsedGateAdaptive) {
  // Waveform breakpoints: source-delta batches through the adaptive path.
  SetCircuit f(0.02, -0.02, 0.0);
  f.c.set_source(f.gate, Waveform::pulse(0.0, 0.03, 1e-9, 2e-9, 8e-9));
  Engine e(f.c, engine_opts(1.0, true, 4711));
  expect_golden(trajectory_hash(e, 4000), 0xfa20243ff7154094ULL, "pulsed gate adaptive");
}

TEST(GoldenTrajectory, PulsedGateNonAdaptive) {
  SetCircuit f(0.02, -0.02, 0.0);
  f.c.set_source(f.gate, Waveform::pulse(0.0, 0.03, 1e-9, 2e-9, 8e-9));
  Engine e(f.c, engine_opts(1.0, false, 4711));
  expect_golden(trajectory_hash(e, 4000), 0xe4494bcdd2ff4231ULL, "pulsed gate non-adaptive");
}

TEST(GoldenTrajectory, SetAdaptiveFastRates) {
  // --fast-rates on the adaptive thermal path: the tabulated-expm1 kernel
  // produces a distinct but equally pinned trajectory (fast mode trades
  // bitwise compatibility with exact mode for throughput; it must still be
  // deterministic in itself).
  SetCircuit f(0.02, -0.02, 0.0);
  EngineOptions o = engine_opts(4.2, true, 12345);
  o.fast_rates = true;
  Engine e(f.c, o);
  expect_golden(trajectory_hash(e, 4000), 0xcf5194d3136f2cd8ULL,
                "SET adaptive fast-rates");
}

TEST(GoldenTrajectory, CotunnelingFastRates) {
  // Thermal cotunneling through the fast kernel (the batch SoA path): new
  // coverage for the fast-rates extension to second-order channels.
  SetCircuit f(0.004, -0.004, 0.0);
  EngineOptions o = engine_opts(1.3, true, 2024);
  o.cotunneling = true;
  o.fast_rates = true;
  Engine e(f.c, o);
  expect_golden(trajectory_hash(e, 1000), 0xf8222ee726e82f84ULL,
                "cotunneling fast-rates");
}

TEST(GoldenTrajectory, ChainAdaptive) {
  const Circuit c = make_chain(8);
  Engine e(c, engine_opts(0.0, true, 31337));
  expect_golden(trajectory_hash(e, 4000), 0x2f1d6ec72e13f9dcULL, "chain-8 adaptive");
}

TEST(GoldenTrajectory, ChainNonAdaptive) {
  const Circuit c = make_chain(8);
  Engine e(c, engine_opts(0.0, false, 31337));
  expect_golden(trajectory_hash(e, 4000), 0xc1480e041d8ea9bfULL, "chain-8 non-adaptive");
}

// ---- pinned sweep tables (1 and 8 threads) --------------------------------

IvSweepConfig small_sweep(const SetCircuit& f) {
  IvSweepConfig cfg;
  cfg.swept = f.src;
  cfg.mirror = f.drn;
  cfg.from = -0.03;
  cfg.to = 0.03;
  cfg.step = 0.005;
  cfg.probes = {{0, 1.0}, {1, -1.0}};
  cfg.measure.warmup_events = 200;
  cfg.measure.measure_events = 1500;
  return cfg;
}

void expect_sweep_golden(const Circuit& circuit, const EngineOptions& eo,
                         const IvSweepConfig& cfg, std::uint64_t expected,
                         const char* what) {
  const ParallelSweepConfig par{/*base_seed=*/42, /*points_per_unit=*/2};
  const std::vector<IvPoint> t1 =
      run_iv_sweep(circuit, eo, cfg, ParallelExecutor(1), par);
  const std::vector<IvPoint> t8 =
      run_iv_sweep(circuit, eo, cfg, ParallelExecutor(8), par);
  const std::uint64_t h1 = sweep_hash(t1);
  const std::uint64_t h8 = sweep_hash(t8);
  EXPECT_EQ(h1, h8) << what << ": sweep table depends on thread count";
  expect_golden(h1, expected, what);
}

TEST(GoldenSweep, SetAdaptive) {
  SetCircuit f(0.0, 0.0, 0.0);
  expect_sweep_golden(f.c, engine_opts(1.0, true, 42), small_sweep(f), 0xf73fbca040a71e9dULL,
                      "SET sweep adaptive");
}

TEST(GoldenSweep, SetNonAdaptive) {
  SetCircuit f(0.0, 0.0, 0.0);
  expect_sweep_golden(f.c, engine_opts(1.0, false, 42), small_sweep(f), 0xc6d1277da8a46020ULL,
                      "SET sweep non-adaptive");
}

TEST(GoldenSweep, SetAdaptiveFastRates) {
  SetCircuit f(0.0, 0.0, 0.0);
  EngineOptions o = engine_opts(4.2, true, 42);
  o.fast_rates = true;
  expect_sweep_golden(f.c, o, small_sweep(f), 0x92d6744f5dd2e436ULL,
                      "SET sweep adaptive fast-rates");
}

TEST(GoldenSweep, SsetAdaptiveRequested) {
  SetCircuit f(0.0, 0.0, 0.0);
  f.c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  IvSweepConfig cfg = small_sweep(f);
  cfg.measure.warmup_events = 100;
  cfg.measure.measure_events = 600;
  expect_sweep_golden(f.c, engine_opts(0.3, true, 42), cfg, 0x98157f90f0e3884aULL,
                      "SSET sweep");
}

}  // namespace
}  // namespace semsim
