// Service layer (src/serve/) end to end: hardened JSON limits, the
// request-envelope codec, the fingerprint-keyed result cache, the job
// scheduler (bitwise served-vs-direct equivalence at 1 and 8 worker
// threads, including a fault-injected degraded case), cancellation and
// shutdown leaving resumable spool checkpoints, and the socket server's
// wire protocol.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/api.h"
#include "base/error.h"
#include "io/envelope.h"
#include "io/json.h"
#include "netlist/parser.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/journal.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace semsim {
namespace {

// Small set-style sweep: 6 bias points, a couple thousand events each —
// fast enough to run many times per suite, structured enough to exercise
// the full sweep path (symm mirror, gate capacitor).
constexpr char kSweepInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 3 0.0
symm 2
temp 5
record 1 2
jumps 2000
sweep 1 0.01 0.002
)";

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  return ErrorCode::kNone;
}

// ---- hardened JSON parsing (network input) -------------------------------

TEST(JsonLimits, DeepNestingIsRejectedNotCrashed) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  JsonParseLimits limits;
  limits.max_depth = 16;
  EXPECT_EQ(code_of([&] { JsonValue::parse(deep, limits); }),
            ErrorCode::kParseJsonTooDeep);
  // Within the cap the same shape parses fine.
  limits.max_depth = 64;
  EXPECT_NO_THROW(JsonValue::parse(deep, limits));
}

TEST(JsonLimits, DefaultParseStillCapsPathologicalDepth) {
  // The no-limits overload keeps a generous default depth cap, so even
  // internal callers cannot be blown off the parser stack.
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "[";
  for (int i = 0; i < 5000; ++i) deep += "]";
  EXPECT_EQ(code_of([&] { JsonValue::parse(deep); }),
            ErrorCode::kParseJsonTooDeep);
}

TEST(JsonLimits, OversizeDocumentIsRejected) {
  JsonParseLimits limits;
  limits.max_bytes = 32;
  const std::string big =
      "{\"key\":\"" + std::string(100, 'x') + "\"}";
  EXPECT_EQ(code_of([&] { JsonValue::parse(big, limits); }),
            ErrorCode::kParseJsonTooLarge);
  EXPECT_NO_THROW(JsonValue::parse("{\"k\":1}", limits));
}

// ---- request envelope codec ----------------------------------------------

TEST(Envelope, SubmitRoundTripsEveryField) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kSubmit;
  env.priority = -3;
  env.netlist = kSweepInput;
  env.seed = 42;
  env.adaptive = false;
  env.fast_rates = true;
  env.repeats = 5;
  env.stop.max_events = 9999;
  env.stop.target_rel_error = 0.125;
  env.stop.check_interval = 64;
  env.retry.strict = true;
  env.retry.max_attempts = 7;
  FaultSpec f;
  f.kind = FaultKind::kNanRate;
  f.unit = 2;
  f.at_event = 100;
  f.sticky = true;
  env.fault.faults.push_back(f);

  const RequestEnvelope back =
      parse_request_envelope(encode_request_envelope(env));
  EXPECT_EQ(back.verb, RequestEnvelope::Verb::kSubmit);
  EXPECT_EQ(back.priority, -3);
  EXPECT_EQ(back.netlist, kSweepInput);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_FALSE(back.adaptive);
  EXPECT_TRUE(back.fast_rates);
  EXPECT_EQ(back.repeats, 5u);
  EXPECT_EQ(back.stop.max_events, 9999u);
  EXPECT_EQ(back.stop.target_rel_error, 0.125);
  EXPECT_EQ(back.stop.check_interval, 64u);
  EXPECT_TRUE(back.retry.strict);
  EXPECT_EQ(back.retry.max_attempts, 7u);
  ASSERT_EQ(back.fault.faults.size(), 1u);
  EXPECT_EQ(back.fault.faults[0].kind, FaultKind::kNanRate);
  EXPECT_EQ(back.fault.faults[0].unit, 2u);
  EXPECT_EQ(back.fault.faults[0].at_event, 100u);
  EXPECT_TRUE(back.fault.faults[0].sticky);
}

TEST(Envelope, JobVerbsRoundTrip) {
  for (const auto verb :
       {RequestEnvelope::Verb::kStatus, RequestEnvelope::Verb::kResult,
        RequestEnvelope::Verb::kCancel}) {
    RequestEnvelope env;
    env.verb = verb;
    env.job_id = 17;
    const RequestEnvelope back =
        parse_request_envelope(encode_request_envelope(env));
    EXPECT_EQ(back.verb, verb);
    EXPECT_EQ(back.job_id, 17u);
  }
}

TEST(Envelope, MalformedRequestsAreCodedRejections) {
  // Wrong schema tag.
  EXPECT_THROW(
      parse_request_envelope(R"({"schema":"bogus/v9","verb":"ping"})"),
      ParseError);
  // Unknown verb.
  EXPECT_THROW(parse_request_envelope(
                   R"({"schema":"semsim.request/v1","verb":"explode"})"),
               ParseError);
  // submit without a netlist.
  EXPECT_THROW(parse_request_envelope(
                   R"({"schema":"semsim.request/v1","verb":"submit"})"),
               ParseError);
  // Fractional job id.
  EXPECT_THROW(
      parse_request_envelope(
          R"({"schema":"semsim.request/v1","verb":"status","job":1.5})"),
      ParseError);
  // Out-of-range priority.
  EXPECT_THROW(parse_request_envelope(
                   R"({"schema":"semsim.request/v1","verb":"submit",)"
                   R"("netlist":"x","priority":1e9})"),
               ParseError);
  // Not JSON at all.
  EXPECT_THROW(parse_request_envelope("hello"), Error);
}

// ---- result cache ---------------------------------------------------------

TEST(ResultCacheTest, CountsHitsAndMissesAndServesBytes) {
  ResultCache cache(1024);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, "document-one");
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "document-one");
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, std::string("document-one").size());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  ResultCache cache(20);
  cache.insert(1, std::string(8, 'a'));
  cache.insert(2, std::string(8, 'b'));
  // Touch 1 so 2 is the LRU victim.
  EXPECT_TRUE(cache.lookup(1).has_value());
  cache.insert(3, std::string(8, 'c'));  // 24 bytes > 20: evict 2
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 20u);
}

TEST(ResultCacheTest, OversizedAndDisabledInsertsAreDropped) {
  ResultCache off(0);
  off.insert(1, "x");
  EXPECT_FALSE(off.lookup(1).has_value());
  ResultCache tiny(4);
  tiny.insert(2, "longer-than-budget");
  EXPECT_FALSE(tiny.lookup(2).has_value());
}

// ---- run fingerprint ------------------------------------------------------

RunRequest sweep_request(unsigned threads = 1, std::uint64_t seed = 7) {
  RunRequest req;
  req.input = parse_simulation_input(kSweepInput);
  req.seed = seed;
  req.threads = threads;
  return req;
}

TEST(Fingerprint, StableAcrossThreadCountsAndExposedInJson) {
  const std::uint64_t fp1 = sweep_request(1).fingerprint();
  const std::uint64_t fp8 = sweep_request(8).fingerprint();
  EXPECT_EQ(fp1, fp8);

  const RunResult res = run(sweep_request(2));
  EXPECT_EQ(res.fingerprint, fp1);
  const std::string doc = res.to_json();
  EXPECT_NE(doc.find("\"fingerprint\":\"" + fingerprint_hex(fp1) + "\""),
            std::string::npos);
}

TEST(Fingerprint, ChangesWithAnyResultAffectingOption) {
  const std::uint64_t base = sweep_request().fingerprint();

  EXPECT_NE(sweep_request(1, 8).fingerprint(), base);  // seed

  RunRequest req = sweep_request();
  req.adaptive = false;
  EXPECT_NE(req.fingerprint(), base);

  req = sweep_request();
  req.fast_rates = true;  // approximate kernel => different trajectories
  EXPECT_NE(req.fingerprint(), base);

  req = sweep_request();
  req.stop.target_rel_error = 0.05;
  req.stop.check_interval = 32;
  EXPECT_NE(req.fingerprint(), base);

  req = sweep_request();
  req.input.repeats = 9;
  EXPECT_NE(req.fingerprint(), base);

  // Not fingerprinted: execution environment and observers.
  req = sweep_request();
  req.threads = 64;
  req.checkpoint_path = "/tmp/elsewhere.ckpt";
  EXPECT_EQ(req.fingerprint(), base);
}

TEST(CanonicalJson, PureFunctionOfRunIdentity) {
  const RunResult r1 = run(sweep_request(1));
  const RunResult r8 = run(sweep_request(8));
  // The default document differs (threads field); the canonical form is
  // byte-identical at any thread count.
  EXPECT_EQ(r1.to_json(true), r8.to_json(true));
  EXPECT_NE(r1.to_json(false), r8.to_json(false));
  EXPECT_EQ(r1.to_json(true).find("\"threads\""), std::string::npos);
  EXPECT_EQ(r1.to_json(true).find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(r1.to_json(false).find("\"threads\""), std::string::npos);
}

// ---- scheduler: served == direct, bitwise ---------------------------------

RequestEnvelope sweep_envelope(std::uint64_t seed = 7) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kSubmit;
  env.netlist = kSweepInput;
  env.seed = seed;
  return env;
}

JobStatus wait_terminal(const JobScheduler& sched, std::uint64_t id) {
  for (;;) {
    const std::optional<JobStatus> s = sched.status(id);
    EXPECT_TRUE(s.has_value());
    if (!s.has_value() || job_state_terminal(s->state)) return *s;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(Scheduler, ServedResultBitwiseIdenticalToDirectRunAt1And8Threads) {
  const std::string want = run(sweep_request()).to_json(/*canonical=*/true);
  for (const unsigned threads : {1u, 8u}) {
    SchedulerConfig cfg;
    cfg.threads = threads;
    JobScheduler sched(cfg);
    const std::uint64_t id = sched.submit(sweep_envelope());
    const JobStatus s = wait_terminal(sched, id);
    ASSERT_EQ(s.state, JobState::kDone) << s.error;
    EXPECT_FALSE(s.cached);
    EXPECT_EQ(sched.result(id), want) << "threads=" << threads;
    // Streaming progress observed the whole sweep.
    EXPECT_GT(s.units_total, 0u);
    EXPECT_EQ(s.units_done, s.units_total);
    EXPECT_EQ(s.points_done, s.points_total);
    EXPECT_EQ(s.partial.size(), s.points_total);
    sched.shutdown();
  }
}

TEST(Scheduler, DegradedFaultInjectedRunServedBitwiseIdentical) {
  // The same deterministic fault plan through both paths: unit 2 throws
  // kNonFiniteRate on every attempt, exhausts its retries, and degrades to
  // a failed:invariant.non_finite_rate row.
  FaultSpec f;
  f.kind = FaultKind::kNanRate;
  f.unit = 2;
  f.at_event = 100;
  FaultPlan plan;
  plan.faults.push_back(f);

  RunRequest direct = sweep_request();
  direct.fault_plan = &plan;
  const RunResult ref = run(direct);
  ASSERT_TRUE(ref.driver.degraded());
  const std::string want = ref.to_json(/*canonical=*/true);

  RequestEnvelope env = sweep_envelope();
  env.fault.faults.push_back(f);
  SchedulerConfig cfg;
  cfg.threads = 4;
  JobScheduler sched(cfg);
  const std::uint64_t id = sched.submit(env);
  const JobStatus s = wait_terminal(sched, id);
  ASSERT_EQ(s.state, JobState::kDone) << s.error;
  EXPECT_GE(s.degraded_points, 1u);
  EXPECT_EQ(sched.result(id), want);
  sched.shutdown();
}

TEST(Scheduler, ResubmitHitsCacheWithoutRunning) {
  SchedulerConfig cfg;
  cfg.threads = 2;
  JobScheduler sched(cfg);
  const std::uint64_t first = sched.submit(sweep_envelope());
  const JobStatus s1 = wait_terminal(sched, first);
  ASSERT_EQ(s1.state, JobState::kDone) << s1.error;
  const ResultCache::Stats before = sched.cache_stats();
  EXPECT_EQ(before.hits, 0u);
  EXPECT_EQ(before.insertions, 1u);

  const std::uint64_t second = sched.submit(sweep_envelope());
  // Born done: no queue wait, no engine work, not even a progress report.
  const std::optional<JobStatus> s2 = sched.status(second);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->state, JobState::kDone);
  EXPECT_TRUE(s2->cached);
  EXPECT_EQ(s2->units_total, 0u);
  EXPECT_EQ(sched.result(second), sched.result(first));

  const ResultCache::Stats after = sched.cache_stats();
  EXPECT_EQ(after.hits, 1u);
  EXPECT_EQ(sched.stats().cache_hits, 1u);

  // A different seed is a different fingerprint: misses, runs for real.
  const std::uint64_t third = sched.submit(sweep_envelope(/*seed=*/8));
  const JobStatus s3 = wait_terminal(sched, third);
  EXPECT_EQ(s3.state, JobState::kDone);
  EXPECT_FALSE(s3.cached);
  EXPECT_NE(sched.result(third), sched.result(first));
  sched.shutdown();
}

TEST(Scheduler, UnknownAndNotReadyJobsAreCodedErrors) {
  SchedulerConfig cfg;
  JobScheduler sched(cfg);
  EXPECT_EQ(code_of([&] { sched.result(99); }), ErrorCode::kServeUnknownJob);
  EXPECT_EQ(code_of([&] { sched.cancel(99); }), ErrorCode::kServeUnknownJob);
  EXPECT_FALSE(sched.status(99).has_value());

  // A malformed netlist is rejected at submit; no job is created.
  RequestEnvelope bad = sweep_envelope();
  bad.netlist = "junc 1 1 2 bogus";
  EXPECT_THROW(sched.submit(bad), Error);
  EXPECT_EQ(sched.stats().submitted, 0u);
  sched.shutdown();
}

// ---- cancellation and shutdown checkpoints --------------------------------

/// Slows every work unit down deterministically (sleep fault, no effect on
/// results) so cancel/shutdown reliably land mid-run.
RequestEnvelope slow_sweep_envelope(std::uint32_t millis = 300) {
  RequestEnvelope env = sweep_envelope();
  FaultSpec f;
  f.kind = FaultKind::kSleep;
  f.at_event = 50;
  f.millis = millis;
  env.fault.faults.push_back(f);
  return env;
}

JobStatus wait_running_unit(const JobScheduler& sched, std::uint64_t id) {
  for (;;) {
    const std::optional<JobStatus> s = sched.status(id);
    EXPECT_TRUE(s.has_value());
    if (s->units_done >= 1 || job_state_terminal(s->state)) return *s;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path("/tmp/" + stem + "." + std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

void expect_same_sweep(const std::string& got_doc,
                       const std::string& want_doc) {
  const JsonValue got = JsonValue::parse(got_doc);
  const JsonValue want = JsonValue::parse(want_doc);
  const auto& grows = got.at("sweep").items();
  const auto& wrows = want.at("sweep").items();
  ASSERT_EQ(grows.size(), wrows.size());
  for (std::size_t i = 0; i < grows.size(); ++i) {
    // %.17g serialization round-trips doubles exactly, so == is bitwise.
    EXPECT_EQ(grows[i].at("bias_V").as_number(),
              wrows[i].at("bias_V").as_number());
    EXPECT_EQ(grows[i].at("current_A").as_number(),
              wrows[i].at("current_A").as_number())
        << "row " << i;
    EXPECT_EQ(grows[i].at("stderr_A").as_number(),
              wrows[i].at("stderr_A").as_number())
        << "row " << i;
    EXPECT_EQ(grows[i].at("status").as_string(),
              wrows[i].at("status").as_string());
  }
}

TEST(Scheduler, CancelLeavesResumableCheckpointAndResubmitResumes) {
  const std::string want = run(sweep_request()).to_json(/*canonical=*/true);
  TempDir spool("semsim_serve_cancel_spool");
  SchedulerConfig cfg;
  cfg.threads = 1;
  cfg.spool_dir = spool.path;
  JobScheduler sched(cfg);

  const std::uint64_t id = sched.submit(slow_sweep_envelope());
  const JobStatus mid = wait_running_unit(sched, id);
  ASSERT_FALSE(job_state_terminal(mid.state))
      << "job finished before cancel could land; raise the sleep fault";
  EXPECT_TRUE(sched.cancel(id));
  const JobStatus s = wait_terminal(sched, id);
  ASSERT_EQ(s.state, JobState::kCancelled);
  ASSERT_FALSE(s.checkpoint_path.empty());
  EXPECT_TRUE(std::filesystem::exists(s.checkpoint_path));
  EXPECT_EQ(code_of([&] { sched.result(id); }), ErrorCode::kServeJobNotReady);

  // Identical request (sans the sleep, which is not part of the
  // fingerprint): resumes from the checkpointed prefix and completes.
  const std::uint64_t again = sched.submit(sweep_envelope());
  const JobStatus s2 = wait_terminal(sched, again);
  ASSERT_EQ(s2.state, JobState::kDone) << s2.error;
  EXPECT_FALSE(s2.cached);
  // Fewer fresh units than the whole sweep: some were restored.
  expect_same_sweep(sched.result(again), want);
  // Success clears the spool file.
  EXPECT_FALSE(std::filesystem::exists(s.checkpoint_path));
  sched.shutdown();
}

TEST(Scheduler, ShutdownCancelsAndCheckpointsTheRunningJob) {
  const std::string want = run(sweep_request()).to_json(/*canonical=*/true);
  TempDir spool("semsim_serve_shutdown_spool");
  SchedulerConfig cfg;
  cfg.threads = 1;
  cfg.spool_dir = spool.path;

  std::string ckpt;
  {
    JobScheduler sched(cfg);
    const std::uint64_t id = sched.submit(slow_sweep_envelope());
    const JobStatus mid = wait_running_unit(sched, id);
    ASSERT_FALSE(job_state_terminal(mid.state));
    sched.shutdown();
    const std::optional<JobStatus> s = sched.status(id);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->state, JobState::kCancelled);
    ASSERT_FALSE(s->checkpoint_path.empty());
    ckpt = s->checkpoint_path;
    EXPECT_TRUE(std::filesystem::exists(ckpt));
    // Submits are refused once shutdown began.
    EXPECT_EQ(code_of([&] { sched.submit(sweep_envelope()); }),
              ErrorCode::kServeShuttingDown);
  }

  // A fresh daemon resumes the interrupted job from the same spool.
  JobScheduler sched2(cfg);
  const std::uint64_t id = sched2.submit(sweep_envelope());
  const JobStatus s = wait_terminal(sched2, id);
  ASSERT_EQ(s.state, JobState::kDone) << s.error;
  expect_same_sweep(sched2.result(id), want);
  EXPECT_FALSE(std::filesystem::exists(ckpt));
  sched2.shutdown();
}

TEST(Scheduler, QueuedJobCancelIsImmediate) {
  SchedulerConfig cfg;
  cfg.threads = 1;
  JobScheduler sched(cfg);
  // Occupy the dispatcher, then cancel a job that is still queued.
  const std::uint64_t busy = sched.submit(slow_sweep_envelope());
  const std::uint64_t queued = sched.submit(sweep_envelope(/*seed=*/9));
  EXPECT_TRUE(sched.cancel(queued));
  const std::optional<JobStatus> s = sched.status(queued);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, JobState::kCancelled);
  EXPECT_FALSE(sched.cancel(queued));  // already terminal
  sched.cancel(busy);
  wait_terminal(sched, busy);
  sched.shutdown();
}

// ---- socket server --------------------------------------------------------

struct ServerFixture {
  TempDir dir;
  SchedulerConfig sched_cfg;
  JobScheduler scheduler;
  ServerConfig server_cfg;
  Server server;
  std::thread accept_thread;

  explicit ServerFixture(std::size_t max_request_bytes = 4u << 20)
      : dir("semsim_serve_sock"),
        sched_cfg{/*threads=*/2, /*cache_bytes=*/64u << 20,
                  /*spool_dir=*/""},
        scheduler(sched_cfg),
        server_cfg{make_server_config(max_request_bytes)},
        server(server_cfg, scheduler),
        accept_thread([this] { server.run(); }) {}

  ServerConfig make_server_config(std::size_t max_request_bytes) {
    std::filesystem::create_directories(dir.path);
    ServerConfig cfg;
    cfg.unix_path = dir.path + "/d.sock";
    cfg.max_request_bytes = max_request_bytes;
    cfg.max_json_depth = 16;
    return cfg;
  }

  ServeClient client() const {
    return ServeClient::unix_socket(server_cfg.unix_path);
  }

  ~ServerFixture() {
    server.stop();
    if (accept_thread.joinable()) accept_thread.join();
    scheduler.shutdown();
  }
};

TEST(SocketServer, FullProtocolRoundTripOverUnixSocket) {
  ServerFixture fx;
  const ServeClient client = fx.client();

  // ping
  RequestEnvelope ping;
  const JsonValue pong = JsonValue::parse(client.call(ping));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_EQ(pong.at("result_schema").as_string(), RunResult::kJsonSchema);

  // submit
  const JsonValue sub = JsonValue::parse(client.call(sweep_envelope()));
  ASSERT_TRUE(sub.at("ok").as_bool());
  const std::uint64_t job =
      static_cast<std::uint64_t>(sub.at("job").as_number());
  EXPECT_FALSE(sub.at("cached").as_bool());

  // poll status to completion
  RequestEnvelope status;
  status.verb = RequestEnvelope::Verb::kStatus;
  status.job_id = job;
  std::string state;
  for (;;) {
    const JsonValue s = JsonValue::parse(client.call(status));
    ASSERT_TRUE(s.at("ok").as_bool());
    state = s.at("state").as_string();
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(state, "done");

  // result: the stored canonical document VERBATIM, byte-identical to a
  // direct in-process run.
  RequestEnvelope result;
  result.verb = RequestEnvelope::Verb::kResult;
  result.job_id = job;
  const std::string served = client.call(result);
  EXPECT_EQ(served, run(sweep_request()).to_json(/*canonical=*/true));

  // resubmit: cache hit over the wire.
  const JsonValue sub2 = JsonValue::parse(client.call(sweep_envelope()));
  EXPECT_TRUE(sub2.at("cached").as_bool());
  EXPECT_EQ(sub2.at("state").as_string(), "done");

  // stats reflect the hit.
  RequestEnvelope stats;
  stats.verb = RequestEnvelope::Verb::kStats;
  const JsonValue st = JsonValue::parse(client.call(stats));
  EXPECT_EQ(st.at("cache").at("hits").as_number(), 1.0);
  EXPECT_EQ(st.at("scheduler").at("submitted").as_number(), 2.0);

  // unknown job is a coded error response, connection stays usable.
  RequestEnvelope nosuch;
  nosuch.verb = RequestEnvelope::Verb::kResult;
  nosuch.job_id = 999;
  const JsonValue err = JsonValue::parse(client.call(nosuch));
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("name").as_string(), "serve.unknown_job");

  // shutdown verb stops the accept loop.
  RequestEnvelope bye;
  bye.verb = RequestEnvelope::Verb::kShutdown;
  const JsonValue ack = JsonValue::parse(client.call(bye));
  EXPECT_TRUE(ack.at("ok").as_bool());
  for (int i = 0; i < 100 && !fx.server.shutdown_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fx.server.shutdown_requested());
}

TEST(SocketServer, MalformedAndOversizedRequestsGetCodedResponses) {
  ServerFixture fx(/*max_request_bytes=*/512);
  const ServeClient client = fx.client();

  const JsonValue bad = JsonValue::parse(client.call_raw("this is not json"));
  EXPECT_FALSE(bad.at("ok").as_bool());

  std::string deep = R"({"schema":"semsim.request/v1","verb":"ping","x":)";
  for (int i = 0; i < 40; ++i) deep += "[";
  for (int i = 0; i < 40; ++i) deep += "]";
  deep += "}";
  const JsonValue toodeep = JsonValue::parse(client.call_raw(deep));
  EXPECT_FALSE(toodeep.at("ok").as_bool());
  EXPECT_EQ(toodeep.at("error").at("name").as_string(),
            "parse.json_too_deep");

  const std::string huge =
      R"({"schema":"semsim.request/v1","verb":"ping","pad":")" +
      std::string(2048, 'x') + "\"}";
  const JsonValue toobig = JsonValue::parse(client.call_raw(huge));
  EXPECT_FALSE(toobig.at("ok").as_bool());
  EXPECT_EQ(toobig.at("error").at("name").as_string(),
            "parse.json_too_large");
}

// ---- durability: WAL journal, replay, deadlines, admission control --------

std::string read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Envelope, DeadlineAndClientRoundTrip) {
  RequestEnvelope env = sweep_envelope();
  env.deadline_ms = 60000;
  env.client = "sweep-farm-3";
  const RequestEnvelope back =
      parse_request_envelope(encode_request_envelope(env));
  EXPECT_EQ(back.deadline_ms, 60000u);
  EXPECT_EQ(back.client, "sweep-farm-3");
  // Absent on the wire == defaults, so pre-deadline clients parse
  // unchanged.
  const RequestEnvelope plain =
      parse_request_envelope(encode_request_envelope(sweep_envelope()));
  EXPECT_EQ(plain.deadline_ms, 0u);
  EXPECT_TRUE(plain.client.empty());
}

TEST(Journal, EmptyFileStartsFreshAndRecordsReplay) {
  TempDir dir("semsim_journal_fresh");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/j.wal";
  {
    JobJournal j(path);
    EXPECT_TRUE(j.records().empty());
    EXPECT_EQ(j.truncated_bytes(), 0u);
    JournalRecord rec;
    rec.type = JournalRecord::Type::kSubmit;
    rec.job_id = 1;
    rec.envelope_json = encode_request_envelope(sweep_envelope());
    rec.deadline_unix_ms = 12345;
    rec.client = "c";
    j.append(rec);
  }
  JobJournal j2(path);
  ASSERT_EQ(j2.records().size(), 1u);
  EXPECT_EQ(j2.records()[0].type, JournalRecord::Type::kSubmit);
  EXPECT_EQ(j2.records()[0].job_id, 1u);
  EXPECT_EQ(j2.records()[0].deadline_unix_ms, 12345u);
  EXPECT_EQ(j2.records()[0].client, "c");
  EXPECT_EQ(j2.truncated_bytes(), 0u);
}

TEST(Journal, TornFinalRecordIsTruncatedToLastValidPrefix) {
  TempDir dir("semsim_journal_torn");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/j.wal";
  {
    JobJournal j(path);
    JournalRecord rec;
    rec.type = JournalRecord::Type::kStart;
    rec.job_id = 1;
    j.append(rec);
    rec.job_id = 2;
    j.append(rec);
  }
  const std::uint64_t clean_size = std::filesystem::file_size(path);
  {
    // A crash mid-append: garbage bytes that are not a complete record.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "\x07torn-append";
  }
  {
    JobJournal j(path);
    ASSERT_EQ(j.records().size(), 2u);
    EXPECT_GT(j.truncated_bytes(), 0u);
  }
  // The tail was truncated OFF THE FILE, so a second restart sees a clean
  // journal — replay is idempotent.
  EXPECT_EQ(std::filesystem::file_size(path), clean_size);
  JobJournal again(path);
  EXPECT_EQ(again.records().size(), 2u);
  EXPECT_EQ(again.truncated_bytes(), 0u);
}

TEST(Journal, HeaderDamageIsUnrecoverableCorruption) {
  TempDir dir("semsim_journal_bad");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/j.wal";
  {
    std::ofstream f(path, std::ios::binary);
    f << std::string(32, '\xFF');
  }
  EXPECT_EQ(code_of([&] { JobJournal j(path); }),
            ErrorCode::kServeJournalCorrupt);
}

/// Builds a journal file by hand — the crash-survivor's view of the world
/// — so replay can be tested without actually SIGKILLing the process
/// (tools/semsim_chaos.cpp covers the real-kill path).
void craft_journal(const std::string& path,
                   const std::vector<JournalRecord>& records) {
  JobJournal j(path);
  for (const JournalRecord& rec : records) j.append(rec);
}

JournalRecord submit_record(std::uint64_t id, const RequestEnvelope& env) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::kSubmit;
  rec.job_id = id;
  rec.envelope_json = encode_request_envelope(env);
  return rec;
}

TEST(Replay, InterruptedJobReenqueuesAndConvergesToDirectBytes) {
  TempDir dir("semsim_replay_pending");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.journal_path = dir.path + "/j.wal";
  // submit + start and then nothing: the daemon died mid-run.
  JournalRecord start;
  start.type = JournalRecord::Type::kStart;
  start.job_id = 1;
  craft_journal(cfg.journal_path, {submit_record(1, sweep_envelope()), start});

  JobScheduler sched(cfg);
  EXPECT_EQ(sched.stats().replayed, 1u);
  EXPECT_EQ(sched.stats().submitted, 1u);
  const JobStatus s = wait_terminal(sched, 1);
  ASSERT_EQ(s.state, JobState::kDone) << s.error;
  EXPECT_EQ(sched.result(1), run(sweep_request()).to_json(/*canonical=*/true));
  // Ids are never reused: the next submit lands past every replayed id.
  EXPECT_EQ(sched.submit(sweep_envelope(/*seed=*/8)), 2u);
  sched.shutdown();
}

TEST(Replay, DoneDocumentComesBackVerbatimAndReseedsTheCache) {
  TempDir dir("semsim_replay_done");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig cfg;
  cfg.journal_path = dir.path + "/j.wal";
  JournalRecord done;
  done.type = JournalRecord::Type::kDone;
  done.job_id = 1;
  done.final_state = JobState::kDone;
  done.document = "FAKEDOC";
  craft_journal(cfg.journal_path, {submit_record(1, sweep_envelope()), done});

  JobScheduler sched(cfg);
  // The terminal job is back verbatim, engine untouched.
  EXPECT_EQ(sched.result(1), "FAKEDOC");
  EXPECT_EQ(sched.stats().completed, 1u);
  // And its document re-seeded the fingerprint cache: an identical submit
  // is born done.
  const std::uint64_t id2 = sched.submit(sweep_envelope());
  const JobStatus s2 = *sched.status(id2);
  EXPECT_EQ(s2.state, JobState::kDone);
  EXPECT_TRUE(s2.cached);
  EXPECT_EQ(sched.result(id2), "FAKEDOC");
  sched.shutdown();
}

TEST(Replay, UnprocessedCancelLandsCancelledNotRunnable) {
  TempDir dir("semsim_replay_cancel");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig cfg;
  cfg.journal_path = dir.path + "/j.wal";
  JournalRecord cancel;
  cancel.type = JournalRecord::Type::kCancel;
  cancel.job_id = 1;
  craft_journal(cfg.journal_path,
                {submit_record(1, sweep_envelope()), cancel});

  JobScheduler sched(cfg);
  const std::optional<JobStatus> s = sched.status(1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, JobState::kCancelled);
  EXPECT_EQ(sched.stats().cancelled, 1u);
  EXPECT_EQ(sched.stats().queued, 0u);
  sched.shutdown();
}

TEST(Replay, DuplicateDoneRecordsCountOnce) {
  TempDir dir("semsim_replay_dupdone");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig cfg;
  cfg.journal_path = dir.path + "/j.wal";
  JournalRecord done;
  done.type = JournalRecord::Type::kDone;
  done.job_id = 1;
  done.final_state = JobState::kDone;
  done.document = "D";
  // The same terminal transition twice (e.g. duplicated around a crash):
  // the first record wins, nothing double-counts.
  craft_journal(cfg.journal_path,
                {submit_record(1, sweep_envelope()), done, done});

  JobScheduler sched(cfg);
  EXPECT_EQ(sched.stats().completed, 1u);
  EXPECT_EQ(sched.stats().submitted, 1u);
  EXPECT_EQ(sched.result(1), "D");
  sched.shutdown();
}

TEST(Replay, DoubleRestartIsBitwiseIdempotent) {
  TempDir dir("semsim_replay_idem");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig cfg;
  cfg.journal_path = dir.path + "/j.wal";
  // An unprocessed cancel forces the FIRST replay to append the
  // cancelled-terminal record; later replays must append nothing.
  JournalRecord cancel;
  cancel.type = JournalRecord::Type::kCancel;
  cancel.job_id = 1;
  craft_journal(cfg.journal_path,
                {submit_record(1, sweep_envelope()), cancel});

  {
    JobScheduler first(cfg);
    EXPECT_EQ(first.status(1)->state, JobState::kCancelled);
    first.shutdown();
  }
  const std::string after_first = read_bytes(cfg.journal_path);
  {
    JobScheduler second(cfg);
    EXPECT_EQ(second.status(1)->state, JobState::kCancelled);
    EXPECT_EQ(second.stats().cancelled, 1u);
    second.shutdown();
  }
  // Double restart == single restart, bitwise.
  EXPECT_EQ(read_bytes(cfg.journal_path), after_first);
  {
    JobScheduler third(cfg);
    third.shutdown();
  }
  EXPECT_EQ(read_bytes(cfg.journal_path), after_first);
}

TEST(Deadline, ExpiredJobFailsCodedNeverMisfiled) {
  TempDir dir("semsim_deadline");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.spool_dir = dir.path + "/spool";
  JobScheduler sched(cfg);
  // Every unit sleeps, so the 6-unit sweep takes ~1s — the 300 ms budget
  // expires mid-run (or, on a very slow box, while still queued; both
  // paths must file the SAME coded failure).
  RequestEnvelope env = slow_sweep_envelope();
  env.deadline_ms = 300;
  const std::uint64_t id = sched.submit(env);
  EXPECT_NE(sched.status(id)->deadline_unix_ms, 0u);
  const JobStatus s = wait_terminal(sched, id);
  EXPECT_EQ(s.state, JobState::kFailed);
  EXPECT_EQ(s.error_code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(sched.stats().deadline_expired, 1u);
  EXPECT_EQ(sched.stats().failed, 1u);
  EXPECT_EQ(sched.stats().cancelled, 0u);  // never misfiled as a cancel
  sched.shutdown();
}

TEST(Deadline, QueuedJobExpiresWithoutEverStartingTheEngine) {
  SchedulerConfig cfg;
  cfg.threads = 2;
  JobScheduler sched(cfg);
  const std::uint64_t busy = sched.submit(slow_sweep_envelope());
  const JobStatus mid = wait_running_unit(sched, busy);
  ASSERT_FALSE(job_state_terminal(mid.state));
  // Starved behind `busy` with a budget far shorter than busy's runtime;
  // its own sleep fault guarantees the deadline also wins the race in the
  // unlikely case it does get dispatched.
  RequestEnvelope env = slow_sweep_envelope();
  env.seed = 9;
  env.deadline_ms = 40;
  const std::uint64_t starved = sched.submit(env);
  const JobStatus s = wait_terminal(sched, starved);
  EXPECT_EQ(s.state, JobState::kFailed);
  EXPECT_EQ(s.error_code, ErrorCode::kDeadlineExceeded);
  sched.cancel(busy);
  wait_terminal(sched, busy);
  sched.shutdown();
}

TEST(Overload, QueueDepthRejectsWithRetryHint) {
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.max_queue_depth = 1;
  cfg.retry_after_ms = 123;
  JobScheduler sched(cfg);
  const std::uint64_t busy = sched.submit(slow_sweep_envelope());
  wait_running_unit(sched, busy);  // off the queue, onto the engine
  const std::uint64_t queued = sched.submit(sweep_envelope(/*seed=*/8));
  try {
    sched.submit(sweep_envelope(/*seed=*/9));
    FAIL() << "expected OverloadError";
  } catch (const OverloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kServerOverloaded);
    EXPECT_EQ(e.retry_after_ms(), 123u);
  }
  EXPECT_EQ(sched.stats().overload_rejected, 1u);
  // The reject is not a job: nothing was created or counted as submitted.
  EXPECT_EQ(sched.stats().submitted, 2u);
  sched.cancel(busy);
  sched.cancel(queued);
  wait_terminal(sched, busy);
  sched.shutdown();
}

TEST(Overload, PerClientInflightCapIsPerClient) {
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.max_inflight_per_client = 1;
  JobScheduler sched(cfg);
  RequestEnvelope alice = slow_sweep_envelope();
  alice.client = "alice";
  const std::uint64_t first = sched.submit(alice);
  RequestEnvelope more = sweep_envelope(/*seed=*/8);
  more.client = "alice";
  EXPECT_EQ(code_of([&] { sched.submit(more); }),
            ErrorCode::kServerOverloaded);
  // A different client is a different bucket.
  RequestEnvelope bob = sweep_envelope(/*seed=*/9);
  bob.client = "bob";
  EXPECT_NO_THROW(sched.submit(bob));
  sched.cancel(first);
  wait_terminal(sched, first);
  sched.shutdown();
}

TEST(SocketServer, OverloadRejectCarriesRetryAfterMsOverTheWire) {
  TempDir dir("semsim_overload_sock");
  std::filesystem::create_directories(dir.path);
  SchedulerConfig scfg;
  scfg.threads = 2;
  scfg.max_queue_depth = 1;
  scfg.retry_after_ms = 99;
  JobScheduler sched(scfg);
  ServerConfig cfg;
  cfg.unix_path = dir.path + "/d.sock";
  Server server(cfg, sched);
  std::thread accept([&server] { server.run(); });
  const ServeClient client = ServeClient::unix_socket(cfg.unix_path);

  const JsonValue sub = JsonValue::parse(client.call(slow_sweep_envelope()));
  ASSERT_TRUE(sub.at("ok").as_bool());
  const std::uint64_t busy =
      static_cast<std::uint64_t>(sub.at("job").as_number());
  // Wait until the job is RUNNING (off the queue) so the next submit
  // deterministically occupies the single queue slot.
  RequestEnvelope poll;
  poll.verb = RequestEnvelope::Verb::kStatus;
  poll.job_id = busy;
  for (;;) {
    const JsonValue s = JsonValue::parse(client.call(poll));
    if (s.at("state").as_string() == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(
      JsonValue::parse(client.call(sweep_envelope(/*seed=*/8))).at("ok")
          .as_bool());
  const JsonValue reject =
      JsonValue::parse(client.call(sweep_envelope(/*seed=*/9)));
  EXPECT_FALSE(reject.at("ok").as_bool());
  EXPECT_EQ(reject.at("error").at("name").as_string(), "serve.overloaded");
  EXPECT_EQ(reject.at("error").at("retry_after_ms").as_number(), 99.0);

  server.stop();
  accept.join();
  sched.shutdown();
}

TEST(SocketServer, TcpLoopbackTransportWorks) {
  SchedulerConfig sched_cfg;
  JobScheduler scheduler(sched_cfg);
  ServerConfig cfg;
  cfg.tcp_port = 0;  // ephemeral
  Server server(cfg, scheduler);
  ASSERT_GT(server.port(), 0);
  std::thread accept([&server] { server.run(); });
  const ServeClient client = ServeClient::tcp(server.port());
  RequestEnvelope ping;
  const JsonValue pong = JsonValue::parse(client.call(ping));
  EXPECT_TRUE(pong.at("ok").as_bool());
  server.stop();
  accept.join();
  scheduler.shutdown();
}

}  // namespace
}  // namespace semsim
