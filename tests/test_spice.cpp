// Tests for the SPICE-style analytical baseline: the SET compact model, the
// Newton/backward-Euler transient engine, and the logic mapping.
#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.h"
#include "base/error.h"
#include "logic/benchmarks.h"
#include "spice/circuit.h"
#include "spice/map_logic.h"
#include "spice/set_model.h"
#include "spice/transient.h"

namespace semsim {
namespace {

SetModelParams logic_model() {
  SetModelParams m;  // defaults mirror SetLogicParams
  return m;
}

// ---- compact model ----------------------------------------------------------

TEST(SetModel, ZeroBiasZeroCurrent) {
  const SetModelParams m = logic_model();
  EXPECT_NEAR(set_drain_current(m, 0.0, 0.0, 0.0, 0.0), 0.0, 1e-18);
  EXPECT_NEAR(set_drain_current(m, 0.01, 0.01, 0.005, 0.0), 0.0, 1e-18);
}

TEST(SetModel, AntisymmetricInBias) {
  const SetModelParams m = logic_model();
  const double vg = 0.012, vb = 0.0;
  const double ip = set_drain_current(m, 0.01, 0.0, vg, vb);
  const double in = set_drain_current(m, 0.0, 0.01, vg, vb);
  EXPECT_NEAR(ip, -in, 1e-12 + 1e-6 * std::abs(ip));
}

TEST(SetModel, GateModulatesCurrent) {
  // At a drain bias inside the worst-case blockade, the gate swings the
  // device between blocked and conducting — the heart of SET logic.
  const SetModelParams m = logic_model();
  const double e = kElementaryCharge;
  const double c_sigma = 2.0 * m.c_j + m.c_g + m.c_b;
  const double vds = 0.4 * e / c_sigma;
  // Degeneracy gate voltage: C_g Vg = e/2 (leads near 0).
  const double vg_on = 0.5 * e / m.c_g;
  const double i_off = set_drain_current(m, vds, 0.0, 0.0, 0.0);
  const double i_on = set_drain_current(m, vds, 0.0, vg_on, 0.0);
  EXPECT_GT(std::abs(i_on), 100.0 * std::abs(i_off));
  EXPECT_GT(i_on, 0.0);
}

TEST(SetModel, PeriodicInGate) {
  const SetModelParams m = logic_model();
  const double period = kElementaryCharge / m.c_g;
  const double i1 = set_drain_current(m, 0.008, 0.0, 0.013, 0.0);
  const double i2 = set_drain_current(m, 0.008, 0.0, 0.013 + period, 0.0);
  EXPECT_NEAR(i2, i1, 1e-3 * std::abs(i1) + 1e-16);
}

TEST(SetModel, SmoothInTerminalVoltages) {
  // Newton needs C1 behaviour: finite differences at two nearby points
  // should agree (no state-window popping artifacts at this scale).
  const SetModelParams m = logic_model();
  const double h = 1e-5;
  for (double vd : {0.002, 0.011, 0.023}) {
    const double d1 = (set_drain_current(m, vd + h, 0.0, 0.01, 0.0) -
                       set_drain_current(m, vd, 0.0, 0.01, 0.0)) / h;
    const double d2 = (set_drain_current(m, vd + 2 * h, 0.0, 0.01, 0.0) -
                       set_drain_current(m, vd + h, 0.0, 0.01, 0.0)) / h;
    EXPECT_NEAR(d1, d2, 0.05 * std::abs(d1) + 1e-12);
  }
}

TEST(SetModel, RequiresPositiveTemperature) {
  SetModelParams m = logic_model();
  m.temperature = 0.0;
  EXPECT_THROW(set_drain_current(m, 0.01, 0.0, 0.0, 0.0), Error);
}

// ---- transient engine ----------------------------------------------------------

TEST(Transient, RcChargingMatchesAnalytic) {
  // R from a 1 V source to a node with C to ground: v(t) = 1 - exp(-t/RC).
  SpiceCircuit c;
  const int src = c.add_node("src");
  c.set_source(src, Waveform::dc(1.0));
  const int n = c.add_node("out");
  c.add_resistor(src, n, 1e6);
  c.add_capacitor(n, SpiceCircuit::kGround, 1e-12);  // tau = 1 us
  TransientOptions o;
  o.dt = 1e-8;
  o.v_damp = 1.0;  // linear problem: no damping needed
  TransientSolver s(c, o);
  s.run_until(1e-6);
  const double expected = 1.0 - std::exp(-1.0);
  EXPECT_NEAR(s.voltage(n), expected, 0.01);
}

TEST(Transient, DcResistorDivider) {
  SpiceCircuit c;
  const int src = c.add_node("src");
  c.set_source(src, Waveform::dc(2.0));
  const int mid = c.add_node("mid");
  c.add_resistor(src, mid, 1e3);
  c.add_resistor(mid, SpiceCircuit::kGround, 3e3);
  TransientOptions o;
  o.v_damp = 10.0;
  TransientSolver s(c, o);
  s.solve_dc();
  EXPECT_NEAR(s.voltage(mid), 1.5, 1e-6);
}

TEST(Transient, StepSourceHonoursBreakpoint) {
  SpiceCircuit c;
  const int src = c.add_node("src");
  c.set_source(src, Waveform::step(0.0, 1.0, 1e-7));
  const int n = c.add_node("out");
  c.add_resistor(src, n, 1e3);
  c.add_capacitor(n, SpiceCircuit::kGround, 1e-12);
  TransientOptions o;
  o.dt = 3e-8;  // deliberately incommensurate with the edge
  o.v_damp = 1.0;
  TransientSolver s(c, o);
  s.run_until(0.99e-7);
  EXPECT_NEAR(s.voltage(n), 0.0, 1e-9);
  s.run_until(5e-7);  // several RC after the step
  EXPECT_NEAR(s.voltage(n), 1.0, 1e-3);
}

TEST(Transient, NonConvergenceThrows) {
  // A SET inverter with an absurd one-iteration Newton budget must report
  // non-convergence, the same failure mode the paper tabulates for SPICE.
  const LogicBenchmark b = make_benchmark("full-adder");
  SetLogicParams p;
  TransientOptions o;
  o.max_newton = 1;
  EXPECT_THROW(spice_delay_experiment(b, p, o, 5e-9, 50e-9), NumericError);
}

// ---- logic mapping ----------------------------------------------------------------

TEST(SpiceMap, DeviceAndNodeCounts) {
  GateNetlist n;
  const SignalId a = n.add_input("a");
  n.mark_output(n.add(GateOp::kInv, a));
  const SpiceLogicCircuit sl = map_to_spice(n, SetLogicParams{});
  EXPECT_EQ(sl.circuit.sets().size(), 2u);        // pSET + nSET
  EXPECT_EQ(sl.circuit.capacitors().size(), 1u);  // output wire load
}

TEST(SpiceMap, InverterDcLevels) {
  GateNetlist n;
  const SignalId a = n.add_input("a");
  const SignalId y = n.add(GateOp::kInv, a);
  n.mark_output(y);
  SetLogicParams p;
  for (const bool high : {false, true}) {
    SpiceLogicCircuit sl = map_to_spice(n, p);
    sl.circuit.set_source(sl.node(a), Waveform::dc(high ? p.vdd : 0.0));
    TransientSolver s(sl.circuit, TransientOptions{});
    s.solve_dc({{sl.node(y), high ? 0.0 : p.vdd}});
    // Settle any residual with a short transient.
    s.run_until(30e-9);
    const double v = s.voltage(sl.node(y));
    if (high) {
      EXPECT_LT(v, 0.3 * p.vdd);
    } else {
      EXPECT_GT(v, 0.7 * p.vdd);
    }
  }
}

TEST(SpiceMap, FullAdderDelayMeasurable) {
  const LogicBenchmark b = make_benchmark("full-adder");
  const SpiceDelayResult r =
      spice_delay_experiment(b, SetLogicParams{}, TransientOptions{}, 5e-9,
                             200e-9);
  ASSERT_FALSE(std::isnan(r.delay)) << "no transition in the SPICE transient";
  EXPECT_GT(r.delay, 1e-11);
  EXPECT_LT(r.delay, 150e-9);
}

TEST(SpiceMap, PerformanceWindowRuns) {
  const LogicBenchmark b = make_benchmark("2-to-10-decoder");
  const SpicePerfResult r = spice_performance_window(
      b, SetLogicParams{}, TransientOptions{}, 100e-9);
  EXPECT_GT(r.steps, 100u);
  EXPECT_NEAR(r.simulated_seconds, 100e-9, 1e-9);
}

}  // namespace
}  // namespace semsim
