// Checkpoint/resume layer (src/obs/checkpoint.h): binary codec round
// trips and corruption rejection, engine snapshot/restore bitwise
// continuation, RunCheckpoint file validation, and driver-level resume
// after a simulated mid-run abort — which must reproduce the
// uninterrupted run bit for bit at every thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/current.h"
#include "analysis/driver.h"
#include "analysis/sweep.h"
#include "base/error.h"
#include "base/random.h"
#include "core/engine.h"
#include "netlist/parser.h"
#include "obs/checkpoint.h"

namespace semsim {
namespace {

// ---- binary codec ---------------------------------------------------------

TEST(BinaryCodec, RoundTripsEveryType) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(-1.5e-19);
  w.f64(0.0);
  w.str("semsim");
  w.vec_u64({1, 2, 3});
  w.vec_i64({-1, 0, 7});
  w.vec_f64({0.25, -0.5});
  w.vec_u8({9, 8});

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -1.5e-19);
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.str(), "semsim");
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_i64(), (std::vector<long>{-1, 0, 7}));
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{0.25, -0.5}));
  EXPECT_EQ(r.vec_u8(), (std::vector<std::uint8_t>{9, 8}));
  EXPECT_EQ(r.remaining(), 0u);
  r.require_done();
}

TEST(BinaryCodec, TruncationAndTrailingBytesThrow) {
  BinaryWriter w;
  w.u64(77);
  BinaryReader short_read(w.bytes().data(), 5);
  EXPECT_THROW(short_read.u64(), Error);

  BinaryReader trailing(w.bytes());
  trailing.u32();
  EXPECT_THROW(trailing.require_done(), Error);

  // A vector length field pointing past the end of the buffer must throw,
  // not allocate.
  BinaryWriter bad;
  bad.u64(1ULL << 40);
  BinaryReader r(bad.bytes());
  EXPECT_THROW(r.vec_f64(), Error);
}

// ---- RNG state export/import ---------------------------------------------

TEST(RngState, RoundTripContinuesTheExactStream) {
  Xoshiro256 a(1234);
  for (int i = 0; i < 100; ++i) a();
  Xoshiro256 b(999);
  b.set_state(a.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b()) << "draw " << i;

  // The all-zero state (xoshiro's fixed point, which would emit 0 forever)
  // is coerced to a valid state, never accepted verbatim.
  Xoshiro256 z(1);
  z.set_state({0, 0, 0, 0});
  bool saw_nonzero = false;
  for (int i = 0; i < 16; ++i) saw_nonzero = saw_nonzero || z() != 0;
  EXPECT_TRUE(saw_nonzero);
}

// ---- engine snapshot / restore -------------------------------------------

struct SetFixture {
  Circuit c;
  NodeId src, drn, gate, island;
  SetFixture() {
    src = c.add_external("src");
    drn = c.add_external("drn");
    gate = c.add_external("gate");
    island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(0.02));
    c.set_source(drn, Waveform::dc(-0.02));
    c.set_source(gate, Waveform::dc(0.0));
  }
};

EngineOptions engine_opts(bool adaptive, std::uint64_t seed = 11) {
  EngineOptions o;
  o.temperature = 5.0;
  o.adaptive.enabled = adaptive;
  o.seed = seed;
  return o;
}

void expect_engines_bitwise_equal(Engine& a, Engine& b) {
  EXPECT_EQ(a.time(), b.time());
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.junction_transferred_e(0), b.junction_transferred_e(0));
  EXPECT_EQ(a.junction_transferred_e(1), b.junction_transferred_e(1));
}

TEST(EngineSnapshot, RestoredEngineContinuesBitwise) {
  for (const bool adaptive : {false, true}) {
    SCOPED_TRACE(adaptive ? "adaptive" : "non-adaptive");
    SetFixture f;
    Engine a(f.c, engine_opts(adaptive));
    a.run_events(500);

    // Serialize through the real codec so the full path is exercised.
    BinaryWriter w;
    encode_engine_snapshot(w, a.snapshot());
    BinaryReader r(w.bytes());
    const EngineSnapshot snap = decode_engine_snapshot(r);
    r.require_done();

    Engine b(f.c, engine_opts(adaptive, /*seed=*/4444));  // seed is replaced
    b.restore(snap);
    expect_engines_bitwise_equal(a, b);

    // The run continuing past snapshot() and the restored run must follow
    // the identical trajectory, event for event.
    a.run_events(2000);
    b.run_events(2000);
    expect_engines_bitwise_equal(a, b);
  }
}

TEST(EngineSnapshot, RestoreRejectsShapeMismatch) {
  SetFixture f;
  Engine a(f.c, engine_opts(true));
  a.run_events(100);
  EngineSnapshot snap = a.snapshot();

  Circuit other;
  const NodeId s = other.add_external("s");
  const NodeId d = other.add_external("d");
  const NodeId i1 = other.add_island("i1");
  const NodeId i2 = other.add_island("i2");
  other.add_junction(s, i1, 1e6, 1e-18);
  other.add_junction(i1, i2, 1e6, 1e-18);
  other.add_junction(i2, d, 1e6, 1e-18);
  Engine b(other, engine_opts(true));
  EXPECT_THROW(b.restore(snap), Error);
}

// ---- RunCheckpoint file layer --------------------------------------------

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(f)),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

std::uint64_t u64_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
  return v;
}

void put_u64(std::vector<std::uint8_t>& b, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

// Header layout (checkpoint.h): magic@0, version@8, reserved@12,
// fingerprint@16, unit_count@24, record_count@32, records from byte 40 as
// [u64 unit | u64 len | payload | u64 checksum].
constexpr std::size_t kRecordCountOffset = 32;
constexpr std::size_t kFirstRecordOffset = 40;

/// Simulates a crash after `keep` completed units: truncates the file to
/// its first `keep` records (valid, since the file is rewritten atomically
/// after every unit — any prefix state is a state a real abort can leave).
void keep_first_records(const std::string& path, std::uint64_t keep) {
  std::vector<std::uint8_t> b = read_bytes(path);
  ASSERT_LE(keep, u64_at(b, kRecordCountOffset));
  std::size_t off = kFirstRecordOffset;
  for (std::uint64_t k = 0; k < keep; ++k) {
    const std::uint64_t len = u64_at(b, off + 8);
    off += 8 + 8 + static_cast<std::size_t>(len) + 8;
  }
  b.resize(off);
  put_u64(b, kRecordCountOffset, keep);
  write_bytes(path, b);
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(RunCheckpoint, RecordsPersistAcrossReopen) {
  TempFile tmp("/tmp/semsim_ckpt_basic.bin");
  {
    RunCheckpoint cp(tmp.path, /*fingerprint=*/7, /*unit_count=*/4);
    EXPECT_EQ(cp.completed(), 0u);
    EXPECT_EQ(cp.last_unit(), -1);
    cp.record(2, {1, 2, 3});
    cp.record(0, {});  // empty payloads are legal
    EXPECT_TRUE(cp.has(2));
    EXPECT_FALSE(cp.has(1));
    EXPECT_THROW(cp.record(4, {0}), Error);  // out of range
    EXPECT_THROW(cp.payload(1), Error);      // absent
  }
  RunCheckpoint back(tmp.path, 7, 4);
  EXPECT_EQ(back.completed(), 2u);
  EXPECT_EQ(back.last_unit(), 2);
  EXPECT_EQ(back.payload(2), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(back.payload(0).empty());
}

TEST(RunCheckpoint, MissingResumeFileIsAnError) {
  EXPECT_THROW(
      RunCheckpoint("/tmp/semsim_ckpt_does_not_exist.bin", 1, 1,
                    /*require_existing=*/true),
      Error);
}

TEST(RunCheckpoint, RejectsCorruptAndMismatchedFiles) {
  TempFile tmp("/tmp/semsim_ckpt_corrupt.bin");
  {
    RunCheckpoint cp(tmp.path, 42, 3);
    cp.record(0, {10, 20, 30, 40});
    cp.record(1, {50});
  }
  const std::vector<std::uint8_t> good = read_bytes(tmp.path);

  // Pristine file reopens fine.
  EXPECT_NO_THROW(RunCheckpoint(tmp.path, 42, 3));

  // Wrong magic: not a checkpoint file at all.
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;
  write_bytes(tmp.path, bad);
  EXPECT_THROW(RunCheckpoint(tmp.path, 42, 3), Error);

  // Unsupported format version.
  bad = good;
  bad[8] += 1;
  write_bytes(tmp.path, bad);
  EXPECT_THROW(RunCheckpoint(tmp.path, 42, 3), Error);

  // Fingerprint mismatch: a different run's file must be refused.
  write_bytes(tmp.path, good);
  EXPECT_THROW(RunCheckpoint(tmp.path, 43, 3), Error);

  // Unit-count mismatch: same run identity but different decomposition.
  EXPECT_THROW(RunCheckpoint(tmp.path, 42, 5), Error);

  // Truncated mid-header and mid-record.
  bad = good;
  bad.resize(6);
  write_bytes(tmp.path, bad);
  EXPECT_THROW(RunCheckpoint(tmp.path, 42, 3), Error);
  bad = good;
  bad.resize(kFirstRecordOffset + 11);
  write_bytes(tmp.path, bad);
  EXPECT_THROW(RunCheckpoint(tmp.path, 42, 3), Error);

  // A flipped payload byte fails the record checksum.
  bad = good;
  bad[kFirstRecordOffset + 16] ^= 0x01;  // first payload byte of record 0
  write_bytes(tmp.path, bad);
  EXPECT_THROW(RunCheckpoint(tmp.path, 42, 3), Error);
}

// ---- driver-level resume: simulated mid-run abort -------------------------

constexpr char kSweepInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 3 0.0
symm 2
temp 5
record 1 2
jumps 2000
sweep 1 0.01 0.002
)";

DriverResult run_input(const char* text, unsigned threads,
                       const std::string& checkpoint = "",
                       const std::string& resume = "") {
  const SimulationInput input = parse_simulation_input(std::string(text));
  DriverOptions opt;
  opt.seed = 7;
  opt.threads = threads;
  opt.checkpoint_path = checkpoint;
  opt.resume_path = resume;
  return run_simulation(input, opt);
}

void expect_sweeps_bitwise_equal(const std::vector<IvPoint>& a,
                                 const std::vector<IvPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bias, b[i].bias) << "point " << i;
    EXPECT_EQ(a[i].current, b[i].current) << "point " << i;
    EXPECT_EQ(a[i].stderr_mean, b[i].stderr_mean) << "point " << i;
    EXPECT_EQ(a[i].rel_error, b[i].rel_error) << "point " << i;
    EXPECT_EQ(a[i].tau_int, b[i].tau_int) << "point " << i;
    EXPECT_EQ(a[i].events, b[i].events) << "point " << i;
  }
}

TEST(DriverResume, SweepInterruptedAndResumedIsBitwiseIdentical) {
  TempFile tmp("/tmp/semsim_ckpt_sweep.bin");
  // Reference: the same run with no checkpointing at all (sweep-unit
  // checkpointing never perturbs the engines, so all three must agree).
  const DriverResult ref = run_input(kSweepInput, 1);
  ASSERT_FALSE(ref.sweep.empty());

  // Complete checkpointed run to produce a full unit file.
  const DriverResult full = run_input(kSweepInput, 1, tmp.path);
  expect_sweeps_bitwise_equal(ref.sweep, full.sweep);

  // Crash after 2 of the 6 sweep units, then resume — at 1 and 8 threads.
  keep_first_records(tmp.path, 2);
  const std::vector<std::uint8_t> interrupted = read_bytes(tmp.path);
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(threads);
    write_bytes(tmp.path, interrupted);
    const DriverResult res = run_input(kSweepInput, threads, "", tmp.path);
    expect_sweeps_bitwise_equal(ref.sweep, res.sweep);
  }
}

TEST(DriverResume, MismatchedConfigurationIsRefused) {
  TempFile tmp("/tmp/semsim_ckpt_mismatch.bin");
  run_input(kSweepInput, 1, tmp.path);
  const SimulationInput input = parse_simulation_input(std::string(kSweepInput));
  DriverOptions opt;
  opt.seed = 8;  // different seed -> different run fingerprint
  opt.resume_path = tmp.path;
  EXPECT_THROW(run_simulation(input, opt), Error);
}

constexpr char kRepeatsInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
temp 5
record 1 2
jumps 1500 6
)";

TEST(DriverResume, RepeatsInterruptedAndResumedIsBitwiseIdentical) {
  TempFile tmp("/tmp/semsim_ckpt_repeats.bin");
  const DriverResult ref = run_input(kRepeatsInput, 1);
  ASSERT_TRUE(ref.current.has_value());

  run_input(kRepeatsInput, 1, tmp.path);
  keep_first_records(tmp.path, 3);  // crash after 3 of the 6 repeats
  const std::vector<std::uint8_t> interrupted = read_bytes(tmp.path);
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(threads);
    write_bytes(tmp.path, interrupted);
    const DriverResult res = run_input(kRepeatsInput, threads, "", tmp.path);
    ASSERT_TRUE(res.current.has_value());
    EXPECT_EQ(ref.current->mean, res.current->mean);
    EXPECT_EQ(ref.current->stderr_mean, res.current->stderr_mean);
    EXPECT_EQ(ref.simulated_time, res.simulated_time);
    EXPECT_EQ(ref.events, res.events);
  }
}

constexpr char kTransientInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
temp 5
record 1 2
time 2e-7
)";

TEST(DriverResume, TransientInterruptedAndResumedIsBitwiseIdentical) {
  // Transient slicing perturbs the trajectory relative to an unsliced run
  // (each snapshot canonicalizes the engine), so the reference here is the
  // COMPLETE checkpointed run — interrupted + resumed must match it exactly.
  TempFile tmp("/tmp/semsim_ckpt_transient.bin");
  const DriverResult ref = run_input(kTransientInput, 1, tmp.path);
  ASSERT_TRUE(ref.current.has_value());

  keep_first_records(tmp.path, 9);  // crash in the middle of the 33 slices
  const DriverResult res = run_input(kTransientInput, 1, "", tmp.path);
  ASSERT_TRUE(res.current.has_value());
  EXPECT_EQ(ref.current->mean, res.current->mean);
  EXPECT_EQ(ref.current->sim_time, res.current->sim_time);
  EXPECT_EQ(ref.simulated_time, res.simulated_time);
  EXPECT_EQ(ref.events, res.events);
}

// ---- convergence-based stopping -------------------------------------------

TEST(Convergence, StopsWhenTargetRelErrorIsMet) {
  SetFixture f;  // conducting bias point: plenty of signal
  Engine engine(f.c, engine_opts(true));
  StopCriterion stop;
  stop.target_rel_error = 0.1;
  stop.max_events = 2000000;
  stop.check_interval = 2048;
  const ConvergedCurrentResult r =
      measure_current_converged(engine, {{0, 1.0}, {1, 1.0}}, 500, stop);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.rel_error, 0.1);
  EXPECT_GT(r.estimate.events, 0u);
  EXPECT_LT(r.estimate.events, stop.max_events);
  EXPECT_NE(r.estimate.mean, 0.0);
  EXPECT_EQ(r.estimate.stderr_mean, r.samples.binned_error());
  EXPECT_GE(r.tau_int, 0.0);
}

TEST(Convergence, StuckEngineReportsExactZeroAsConverged) {
  // T = 0 with no bias: every rate is 0, the engine can never fire an
  // event, and the physical steady-state current is exactly zero.
  SetFixture f;
  f.c.set_source(f.src, Waveform::dc(0.0));
  f.c.set_source(f.drn, Waveform::dc(0.0));
  EngineOptions o;
  o.temperature = 0.0;
  o.seed = 3;
  Engine engine(f.c, o);
  StopCriterion stop;
  stop.target_rel_error = 0.01;
  stop.max_events = 100000;
  const ConvergedCurrentResult r =
      measure_current_converged(engine, {{0, 1.0}, {1, 1.0}}, 100, stop);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.estimate.mean, 0.0);
  EXPECT_EQ(r.rel_error, 0.0);
}

TEST(Convergence, EventCapStopsAnUnconvergedRun) {
  SetFixture f;
  Engine engine(f.c, engine_opts(true));
  StopCriterion stop;
  stop.target_rel_error = 1e-6;  // unreachable in this budget
  stop.max_events = 4000;
  const ConvergedCurrentResult r =
      measure_current_converged(engine, {{0, 1.0}, {1, 1.0}}, 500, stop);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.estimate.events, 4000u);
  EXPECT_GT(r.rel_error, 1e-6);
}

constexpr char kConvergedRepeatsInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
temp 5
record 1 2
jumps 60000 4
)";

TEST(Convergence, MergedRepeatStatisticsThreadCountIndependent) {
  const SimulationInput input =
      parse_simulation_input(std::string(kConvergedRepeatsInput));
  std::vector<DriverResult> results;
  for (const unsigned threads : {1u, 8u}) {
    DriverOptions opt;
    opt.seed = 21;
    opt.threads = threads;
    opt.stop.target_rel_error = 0.2;
    results.push_back(run_simulation(input, opt));
  }
  for (const DriverResult& r : results) {
    ASSERT_TRUE(r.converged.has_value());
    ASSERT_TRUE(r.current.has_value());
    EXPECT_TRUE(r.converged->converged);
    EXPECT_LE(r.converged->rel_error, 0.2);
    EXPECT_GT(r.converged->samples.count(), 0u);
  }
  // Merged (index-order) statistics must be bitwise thread-count
  // independent, exactly like the fixed-budget paths.
  EXPECT_EQ(results[0].current->mean, results[1].current->mean);
  EXPECT_EQ(results[0].current->stderr_mean, results[1].current->stderr_mean);
  EXPECT_EQ(results[0].converged->rel_error, results[1].converged->rel_error);
  EXPECT_EQ(results[0].converged->tau_int, results[1].converged->tau_int);
  EXPECT_EQ(results[0].converged->samples.count(),
            results[1].converged->samples.count());
}

TEST(Convergence, SweepPointsCarryErrorColumnsAndStayDeterministic) {
  const SimulationInput input = parse_simulation_input(std::string(kSweepInput));
  std::vector<DriverResult> results;
  for (const unsigned threads : {1u, 8u}) {
    DriverOptions opt;
    opt.seed = 5;
    opt.threads = threads;
    opt.stop.target_rel_error = 0.25;
    opt.stop.max_events = 40000;
    results.push_back(run_simulation(input, opt));
  }
  expect_sweeps_bitwise_equal(results[0].sweep, results[1].sweep);
  ASSERT_FALSE(results[0].sweep.empty());
  for (const IvPoint& p : results[0].sweep) {
    EXPECT_GT(p.events, 0u);
    // Either the target was met or the cap ended the point.
    EXPECT_TRUE(p.rel_error <= 0.25 || p.events >= 40000)
        << "bias " << p.bias << " rel " << p.rel_error;
  }
}

}  // namespace
}  // namespace semsim
