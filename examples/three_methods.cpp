// The paper's three simulation methods side by side on one device.
//
//   $ ./three_methods
//
// Sec. I of the paper compares SPICE modeling, the master-equation approach
// and Monte-Carlo simulation. This repository implements all three; the
// example runs them on the same SET bias point and prints the same current
// three ways:
//   * Monte-Carlo (the paper's choice, with the adaptive solver),
//   * master equation (exact expectation over the enumerated charge states),
//   * the SPICE-style analytical compact model (via its steady-state
//     master-equation core, evaluated directly here).
#include <cstdio>

#include "analysis/current.h"
#include "core/engine.h"
#include "master/master_equation.h"
#include "netlist/circuit.h"
#include "spice/set_model.h"

using namespace semsim;

int main() {
  const double v_half = 0.018;
  const double vg = 0.010;
  const double temperature = 5.0;

  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);
  c.set_source(src, Waveform::dc(v_half));
  c.set_source(drn, Waveform::dc(-v_half));
  c.set_source(gate, Waveform::dc(vg));

  std::printf("SET at Vds = %.0f mV, Vg = %.0f mV, T = %.0f K\n",
              2e3 * v_half, 1e3 * vg, temperature);

  // 1. Monte-Carlo (adaptive solver).
  EngineOptions eo;
  eo.temperature = temperature;
  eo.seed = 9;
  Engine engine(c, eo);
  const CurrentEstimate mc = measure_mean_current(
      engine, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{5000, 100000, 8});
  std::printf("  Monte-Carlo:      I = %.5e A  (+- %.1e, %llu events)\n",
              mc.mean, mc.stderr_mean,
              static_cast<unsigned long long>(mc.events));

  // 2. Master equation over the enumerated charge states.
  EngineOptions mo;
  mo.temperature = temperature;
  MasterEquationSolver me(c, mo);
  std::printf("  Master equation:  I = %.5e A  (%zu states, residual %.1e)\n",
              me.junction_current(0), me.state_count(), me.residual());

  // 3. The SPICE baseline's analytical compact model. Its gate terms match
  //    this device with the phase gate unused (c_b -> tiny).
  SetModelParams sm;
  sm.r_j = 1e6;
  sm.c_j = 1e-18;
  sm.c_g = 3e-18;
  sm.c_b = 1e-24;  // no phase gate on this device
  sm.temperature = temperature;
  std::printf("  SPICE model:      I = %.5e A\n",
              set_drain_current(sm, v_half, -v_half, vg, 0.0));

  std::printf("\nThe three agree on this single device; the paper's point is\n"
              "what happens at circuit scale — see bench/fig6_performance.\n");
  return 0;
}
