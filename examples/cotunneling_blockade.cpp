// Cotunneling example: transport deep inside the Coulomb blockade.
//
//   $ ./cotunneling_blockade
//
// At T = 0 and |Vds| far below threshold, sequential tunneling is
// impossible: every channel of the orthodox model is closed. With the
// `cotunneling` option the engine adds second-order channels in which an
// electron crosses both junctions coherently (paper Sec. II), and a small
// I ~ V^3 current flows. The example prints the same device with and
// without cotunneling enabled.
#include <cstdio>

#include "analysis/current.h"
#include "core/engine.h"
#include "netlist/circuit.h"

using namespace semsim;

namespace {

Circuit make_set(double v_half) {
  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);
  c.set_source(src, Waveform::dc(v_half));
  c.set_source(drn, Waveform::dc(-v_half));
  return c;
}

}  // namespace

int main() {
  std::printf("# Vds [mV]  I_sequential [A]  I_with_cotunneling [A]\n");
  for (double v_half = 0.001; v_half <= 0.0081; v_half += 0.001) {
    // Sequential only: stuck at T = 0 in blockade -> exactly zero current.
    Circuit c_seq = make_set(v_half);
    EngineOptions seq;
    seq.temperature = 0.0;
    Engine e_seq(c_seq, seq);
    const double i_seq = e_seq.total_rate() == 0.0 ? 0.0 : -1.0;

    Circuit c_cot = make_set(v_half);
    EngineOptions cot;
    cot.temperature = 0.0;
    cot.cotunneling = true;
    cot.seed = 3;
    Engine e_cot(c_cot, cot);
    const CurrentEstimate est = measure_mean_current(
        e_cot, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{500, 10000, 6});

    std::printf("  %5.1f      %.1e           %.4e\n", 2e3 * v_half, i_seq,
                est.mean);
  }
  std::printf("# doubling Vds multiplies the current by ~8 (I ~ V^3,\n"
              "# Averin-Nazarov inelastic cotunneling).\n");
  return 0;
}
