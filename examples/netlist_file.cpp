// Input-file example: run a simulation described in the paper's SPICE-like
// netlist format (Example Input File 1).
//
//   $ ./netlist_file                # uses the built-in paper example
//   $ ./netlist_file my_circuit.sem # or any file in the same format
//
// The embedded netlist is the paper's Example Input File 1, with the second
// junction written island->drain so that both recorded junctions share the
// source->drain current orientation.
#include <cstdio>
#include <string>

#include "analysis/current.h"
#include "analysis/sweep.h"
#include "core/engine.h"
#include "netlist/parser.h"

using namespace semsim;

namespace {

const char* kPaperInput = R"(
#SET component definitions (paper Example Input File 1)
junc 1 1 4 1meg 1e-18
junc 2 4 2 1meg 1e-18
cap 3 4 3e-18
charge 4 0.0

#Input source information
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1

#Overall node information
num j 2
num ext 3
num nodes 4

#Simulation specific information
temp 5
record 1 2
jumps 20000 1
sweep 2 0.02 0.002
)";

}  // namespace

int main(int argc, char** argv) {
  const SimulationInput input = argc > 1
                                    ? parse_simulation_file(argv[1])
                                    : parse_simulation_input(std::string(kPaperInput));

  std::printf("# parsed: %zu nodes, %zu junctions, T = %.2f K%s\n",
              input.circuit.node_count(), input.circuit.junction_count(),
              input.temperature, input.cotunneling ? ", cotunneling on" : "");

  EngineOptions options;
  options.temperature = input.temperature;
  options.cotunneling = input.cotunneling;
  options.seed = 1;
  Engine engine(input.circuit, options);

  if (input.sweep) {
    IvSweepConfig cfg = sweep_config_from_input(input);
    std::printf("# sweeping node %d from %g to %g V (step %g)\n",
                cfg.swept, cfg.from, cfg.to, cfg.step);
    std::printf("# V_swept    I [A]\n");
    for (const IvPoint& p : run_iv_sweep(engine, cfg)) {
      std::printf("%+.5f   %+.4e\n", p.bias, p.current);
    }
  } else {
    std::vector<CurrentProbe> probes;
    for (const std::size_t j : input.record_junctions) probes.push_back({j, 1.0});
    if (probes.empty()) probes.push_back({0, 1.0});
    const CurrentEstimate est = measure_mean_current(
        engine, probes,
        CurrentMeasureConfig{input.max_jumps / 10 + 1, input.max_jumps, 8});
    std::printf("I = %.4e A +- %.1e (over %llu tunnel events)\n", est.mean,
                est.stderr_mean, static_cast<unsigned long long>(est.events));
  }
  return 0;
}
