// DJQP cycle anatomy (paper Fig. 2, right panel).
//
//   $ ./sset_djqp
//
// The double Josephson quasi-particle cycle alternates junctions strictly:
// Cooper pair through 'A', quasi-particle through 'B', Cooper pair through
// 'B', quasi-particle through 'A'. This example solves the bias/gate point
// where BOTH junctions' Cooper-pair resonances line up (two linear
// equations in V_bias, V_gate), runs the Monte-Carlo engine there, and then
// does something only a Monte-Carlo simulator can: it reads the cycle
// composition straight out of the event stream, printing what kind of event
// follows a Cooper-pair tunnel through each junction.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "base/constants.h"
#include "core/engine.h"
#include "netlist/circuit.h"
#include "netlist/electrostatics.h"
#include "physics/bcs.h"

using namespace semsim;

int main() {
  const double temp = 0.30;  // colder than Fig. 5: crisper sub-gap cycles
  const double tc = 1.2, rj = 2.1e5, cj = 110e-18, cg = 14e-18;
  const double delta0 =
      0.21e-3 * kElectronVolt / std::tanh(1.74 * std::sqrt(tc / 0.52 - 1.0));

  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  const std::size_t ja = c.add_junction(src, island, rj, cj);   // junction A
  const std::size_t jb = c.add_junction(island, drn, rj, cj);   // junction B
  c.add_capacitor(gate, island, cg);

  // Solve for (Vb, Vg) such that
  //   CP through A at occupation n = 0:   -2e (v_isl - Vb) + 4u = 0
  //   CP through B at occupation n = 2:   -2e (0 - v_isl(n=2)) + 4u = 0
  // with v_isl = kappa q + s_src Vb + s_gate Vg, q = -n e. Two linear
  // equations in (Vb, Vg).
  const ElectrostaticModel m(c);
  const double e = kElementaryCharge;
  const double kappa = m.kappa_node(island, island);
  const double u = 0.5 * e * e * kappa;
  const double s_src = m.source_gain()(0, 0);
  const double s_gate = m.source_gain()(0, 2);
  // Equation 1: (s_src - 1) Vb + s_gate Vg = -2u/e
  // Equation 2:  s_src Vb + s_gate Vg = -2u/e + 2 e kappa  (v_isl(n=2) term)
  const double r1 = -2.0 * u / e;
  const double r2 = -2.0 * u / e + 2.0 * e * kappa;
  // Subtract: -Vb = r1 - r2  ->  Vb = r2 - r1 = 2 e kappa.
  const double vb = r2 - r1;
  const double vg = (r1 - (s_src - 1.0) * vb) / s_gate;
  std::printf("DJQP point: V_bias = %.4f mV (= 2e/C_sigma), V_gate = %.4f mV\n",
              1e3 * vb, 1e3 * vg);

  c.set_superconducting({delta0, tc});
  c.set_source(src, Waveform::dc(vb));
  c.set_source(gate, Waveform::dc(vg));

  EngineOptions o;
  o.temperature = temp;
  o.seed = 3;
  o.qp_table_half_range = 40.0 * bcs_gap(delta0, tc, temp);
  Engine engine(c, o);

  // Classify each event and count what follows a Cooper pair per junction.
  auto label = [&](const Event& ev) -> std::string {
    const char* kind = ev.kind == Event::Kind::kCooperPair ? "CP" : "qp";
    const char* junc = ev.index == ja ? "A" : (ev.index == jb ? "B" : "?");
    return std::string(kind) + "-" + junc;
  };
  std::map<std::string, std::map<std::string, long>> followers;
  std::map<std::string, long> totals;
  std::string prev;
  Event ev;
  for (int i = 0; i < 60000 && engine.step(&ev); ++i) {
    const std::string cur = label(ev);
    ++totals[cur];
    if (!prev.empty()) ++followers[prev][cur];
    prev = cur;
  }

  std::printf("\nevent mix over %ld events:\n", [&] {
    long t = 0;
    for (const auto& [k, n] : totals) t += n;
    return t;
  }());
  for (const auto& [k, n] : totals) std::printf("  %-4s : %6ld\n", k.c_str(), n);

  std::printf("\nwhat follows a Cooper pair (DJQP predicts the OTHER "
              "junction's quasi-particle):\n");
  for (const std::string cp : {"CP-A", "CP-B"}) {
    const auto it = followers.find(cp);
    if (it == followers.end()) continue;
    long total = 0;
    for (const auto& [k, n] : it->second) total += n;
    std::printf("  after %s:", cp.c_str());
    for (const auto& [k, n] : it->second) {
      std::printf("  %s %4.1f%%", k.c_str(),
                  100.0 * static_cast<double>(n) / static_cast<double>(total));
    }
    std::printf("\n");
  }
  std::printf("\npaper Fig. 2: the DJQP cycle is CP-A, qp-B, CP-B, qp-A, "
              "repeating.\n");
  return 0;
}
