// Superconducting SET example: Josephson quasi-particle (JQP) resonance.
//
//   $ ./sset_jqp
//
// Builds the Fig. 5 superconducting SET, holds the gate at a voltage that
// puts the Cooper-pair resonance inside the sub-gap region, and sweeps the
// bias across it. The JQP cycle — one 2e Cooper-pair tunnel through one
// junction completed by two quasi-particle tunnels through the other
// (paper Fig. 2) — appears as a current peak well below the quasi-particle
// threshold. Nothing about the peak is hard-coded: it emerges from the
// competition of the two channels in the Monte-Carlo engine.
#include <cmath>
#include <cstdio>

#include "analysis/current.h"
#include "base/constants.h"
#include "core/engine.h"
#include "netlist/circuit.h"
#include "physics/bcs.h"

using namespace semsim;

int main() {
  const double temperature = 0.52;  // K
  const double tc = 1.2;            // K
  // Delta0 chosen so Delta(0.52 K) = 0.21 meV, the value the paper quotes.
  const double delta0 =
      0.21e-3 * kElectronVolt / std::tanh(1.74 * std::sqrt(tc / temperature - 1.0));

  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 2.1e5, 110e-18);
  c.add_junction(island, drn, 2.1e5, 110e-18);
  c.add_capacitor(gate, island, 14e-18);
  c.set_background_charge(island, 0.65);  // the experiment's Qb/e
  c.set_superconducting({delta0, tc});
  c.set_source(gate, Waveform::dc(0.008));

  EngineOptions o;
  o.temperature = temperature;
  o.seed = 7;
  o.qp_table_half_range = 20.0 * bcs_gap(delta0, tc, temperature);
  Engine engine(c, o);

  std::printf("# SSET bias sweep at Vg = 8 mV; Delta(T) = %.3f meV\n",
              bcs_gap(delta0, tc, temperature) / kMilliElectronVolt);
  std::printf("# Vbias [mV]   I [A]\n");
  double peak_i = 0.0, peak_v = 0.0;
  for (double vb = 0.1e-3; vb <= 1.4e-3; vb += 0.05e-3) {
    engine.set_dc_source(src, vb);
    engine.rebase_time();
    const CurrentEstimate est = measure_mean_current(
        engine, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{2000, 20000, 6});
    std::printf("%7.3f    %+.4e\n", 1e3 * vb, est.mean);
    // Search the sub-gap region only: above ~0.9 mV the quasi-particle
    // threshold ramp takes over.
    if (vb < 0.9e-3 && std::abs(est.mean) > std::abs(peak_i)) {
      peak_i = est.mean;
      peak_v = vb;
    }
  }
  std::printf("# JQP peak: %.3e A at Vbias = %.3f mV (sub-gap resonance,\n"
              "# on the analytic Cooper-pair resonance at 0.451 mV)\n",
              peak_i, 1e3 * peak_v);
  return 0;
}
