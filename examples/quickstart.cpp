// Quickstart: build a single-electron transistor programmatically, run the
// Monte-Carlo engine, and print an I-V curve.
//
//   $ ./quickstart
//
// The device is the paper's Fig. 1 SET (R = 1 MOhm, C = 1 aF, Cg = 3 aF).
// Expect Coulomb blockade (near-zero current) for |Vds| below
// e/C_sigma = 32 mV and a quasi-linear rise above it.
#include <cstdio>

#include "analysis/current.h"
#include "analysis/sweep.h"
#include "core/engine.h"
#include "netlist/circuit.h"

using namespace semsim;

int main() {
  // 1. Describe the circuit: two tunnel junctions around an island, plus a
  //    capacitively coupled gate.
  Circuit circuit;
  const NodeId source = circuit.add_external("source");
  const NodeId drain = circuit.add_external("drain");
  const NodeId gate = circuit.add_external("gate");
  const NodeId island = circuit.add_island("island");
  circuit.add_junction(source, island, 1e6, 1e-18);  // junction 0
  circuit.add_junction(island, drain, 1e6, 1e-18);   // junction 1
  circuit.add_capacitor(gate, island, 3e-18);
  circuit.set_source(gate, Waveform::dc(0.0));

  // 2. Create the Monte-Carlo engine (adaptive solver on by default).
  EngineOptions options;
  options.temperature = 5.0;  // kelvin
  options.seed = 1;
  Engine engine(circuit, options);

  // 3. Sweep the bias symmetrically and measure the current by charge
  //    counting through both junctions.
  IvSweepConfig sweep;
  sweep.swept = source;
  sweep.mirror = drain;  // drain driven at -V (the paper's `symm`)
  sweep.from = -0.02;
  sweep.to = 0.02;
  sweep.step = 0.002;
  sweep.probes = {{0, 1.0}, {1, 1.0}};
  sweep.measure = CurrentMeasureConfig{2000, 20000, 8};

  std::printf("# Vds [V]    I [A]      (T = 5 K, Vg = 0)\n");
  for (const IvPoint& p : run_iv_sweep(engine, sweep)) {
    std::printf("%+.4f   %+.4e\n", 2.0 * p.bias, p.current);
  }
  std::printf("# Coulomb blockade: current is suppressed for |Vds| < 32 mV.\n");
  return 0;
}
