// SET logic example: a full adder built from nSET/pSET gates, simulated
// with the Monte-Carlo engine AND the SPICE-style analytical baseline.
//
//   $ ./logic_full_adder
//
// Demonstrates the large-scale-circuit side of SEMSIM (paper Sec. IV-B):
// gate-level netlist -> device-level SET circuit, functional verification
// against the boolean model, and a propagation-delay measurement with both
// the adaptive Monte-Carlo solver and the compact-model transient engine.
#include <cstdio>

#include "analysis/delay.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"
#include "spice/map_logic.h"

using namespace semsim;

int main() {
  LogicBenchmark fa = make_benchmark("full-adder");
  std::printf("full adder: %zu gates, %zu SET junctions (paper: %zu)\n",
              fa.netlist.gate_count(), fa.netlist.junction_count(),
              fa.paper_junctions);

  // Functional truth table from the gate-level model.
  std::printf("\n a b c | sum carry\n");
  for (int v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, cin = v & 4;
    const auto r = fa.netlist.evaluate({a, b, cin});
    std::printf(" %d %d %d |  %d    %d\n", a, b, cin,
                int(r[static_cast<std::size_t>(fa.netlist.outputs()[0])]),
                int(r[static_cast<std::size_t>(fa.netlist.outputs()[1])]));
  }

  // Device-level elaboration and Monte-Carlo delay measurement.
  ElaboratedCircuit elab = elaborate(fa.netlist, SetLogicParams{});
  auto model = std::make_shared<const ElectrostaticModel>(elab.circuit());
  std::printf("\nelaborated: %zu islands, %zu junctions\n",
              model->island_count(), elab.circuit().junction_count());

  std::printf("\nMonte-Carlo delay (input a -> sum), 5 seeds:\n");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DelayRunConfig cfg;
    cfg.seed = seed;
    const DelayRunResult r = run_delay_experiment(fa, elab, model, cfg);
    std::printf("  seed %llu: %.3e s  (%llu tunnel events)\n",
                static_cast<unsigned long long>(seed), r.delay,
                static_cast<unsigned long long>(r.events));
  }

  std::printf("\nSPICE-baseline delay (analytical compact model):\n");
  try {
    const SpiceDelayResult rs = spice_delay_experiment(
        fa, SetLogicParams{}, TransientOptions{}, 30e-9, 30e-9 + 2e-6);
    std::printf("  %.3e s  (%zu time steps, %zu Newton iterations)\n",
                rs.delay, rs.steps, rs.newton_iterations);
  } catch (const NumericError& e) {
    std::printf("  non-convergence: %s\n", e.what());
  }
  return 0;
}
