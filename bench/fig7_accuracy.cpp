// Fig. 7 — propagation-delay accuracy of the adaptive method.
//
// For every benchmark the propagation delay (input step to 50% output
// crossing) is measured with:
//   * the non-adaptive Monte-Carlo solver, averaged over reference seeds —
//     "assumed to be the actual propagation delays" (paper);
//   * SEMSIM's adaptive solver, averaged over nine seeds (paper: "the
//     propagation delay errors were calculated for nine different runs");
//   * the SPICE baseline (single deterministic transient).
// Reported: percentage error of each vs the reference. Paper headline:
// SEMSIM average error 3.30%, SPICE average error 9.18% (with SPICE
// failing on three benchmarks).
//
// Default runs the benchmarks up to c432; --full adds the three largest
// (their non-adaptive reference runs are the expensive part, exactly the
// cost the paper's Fig. 6 documents).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "analysis/delay.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"
#include "spice/map_logic.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int ref_seeds = args.full ? 5 : 3;
  const int semsim_seeds = 9;  // as in the paper

  std::printf("== Fig. 7: propagation-delay error vs non-adaptive reference ==\n");
  TableWriter table({"junctions", "ref_delay_s", "semsim_delay_s",
                     "semsim_err_pct", "spice_delay_s", "spice_err_pct"});
  table.add_comment("Fig. 7 reproduction; rows in paper order");

  double err_sum = 0.0, spice_err_sum = 0.0;
  int err_n = 0, spice_n = 0;

  for (LogicBenchmark& b : make_all_benchmarks()) {
    const std::size_t j = b.netlist.junction_count();
    if (!args.full && b.paper_junctions > 2500) {
      std::printf("[%s] skipped by default (reference runs are expensive at "
                  "%zu junctions); rerun with --full\n",
                  b.name.c_str(), j);
      continue;
    }
    std::printf("[%s] %zu junctions\n", b.name.c_str(), j);
    ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
    auto model = std::make_shared<const ElectrostaticModel>(elab.circuit());

    auto mean_delay = [&](bool adaptive, int n_runs, std::uint64_t seed0) {
      double acc = 0.0;
      int n = 0;
      for (int s = 0; s < n_runs; ++s) {
        DelayRunConfig cfg;
        cfg.engine.adaptive.enabled = adaptive;
        cfg.seed = seed0 + static_cast<std::uint64_t>(s);
        const DelayRunResult r = run_delay_experiment(b, elab, model, cfg);
        if (delay_valid(r.delay)) {
          acc += r.delay;
          ++n;
        }
      }
      return n > 0 ? acc / n : std::nan("");
    };

    const double ref = mean_delay(false, ref_seeds, 9000);
    const double semsim = mean_delay(true, semsim_seeds, 100);
    const double err =
        std::isnan(ref) || std::isnan(semsim)
            ? std::nan("")
            : 100.0 * std::abs(semsim - ref) / ref;

    double spice_delay = std::nan(""), spice_err = std::nan("");
    try {
      const SpiceDelayResult rs = spice_delay_experiment(
          b, SetLogicParams{}, TransientOptions{}, 30e-9, 30e-9 + 2e-6);
      if (!rs.output_valid) {
        // The paper excludes its SPICE failures ("incorrect logic outputs")
        // from the average the same way.
        std::printf("  SPICE: incorrect logic output — excluded, as in the "
                    "paper\n");
      } else {
        spice_delay = rs.delay;
        if (!std::isnan(ref) && !std::isnan(spice_delay)) {
          spice_err = 100.0 * std::abs(spice_delay - ref) / ref;
        }
      }
    } catch (const NumericError& e) {
      std::printf("  SPICE: non-convergence (%s)\n", e.what());
    }

    std::printf("  ref %.3e s | SEMSIM %.3e s (err %.2f%%) | SPICE %.3e s "
                "(err %.2f%%)\n",
                ref, semsim, err, spice_delay, spice_err);
    table.add_row({static_cast<double>(j), ref, semsim, err, spice_delay,
                   spice_err});
    if (!std::isnan(err)) {
      err_sum += err;
      ++err_n;
    }
    if (!std::isnan(spice_err)) {
      spice_err_sum += spice_err;
      ++spice_n;
    }
  }

  bench::emit(args, "fig7_accuracy", table);
  if (err_n > 0) {
    std::printf("SEMSIM average delay error: %.2f%%  (paper: 3.30%%)\n",
                err_sum / err_n);
  }
  if (spice_n > 0) {
    std::printf("SPICE  average delay error: %.2f%%  (paper: 9.18%%)\n",
                spice_err_sum / spice_n);
  }
  return 0;
}
