// Fig. 7 — propagation-delay accuracy of the adaptive method.
//
// For every benchmark the propagation delay (input step to 50% output
// crossing) is measured with:
//   * the non-adaptive Monte-Carlo solver, averaged over reference seeds —
//     "assumed to be the actual propagation delays" (paper);
//   * SEMSIM's adaptive solver, averaged over nine seeds (paper: "the
//     propagation delay errors were calculated for nine different runs");
//   * the SPICE baseline (single deterministic transient).
// Reported: percentage error of each vs the reference. Paper headline:
// SEMSIM average error 3.30%, SPICE average error 9.18% (with SPICE
// failing on three benchmarks).
//
// Default runs the benchmarks up to c432; --full adds the three largest
// (their non-adaptive reference runs are the expensive part, exactly the
// cost the paper's Fig. 6 documents).
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "analysis/delay.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"
#include "obs/checkpoint.h"
#include "spice/map_logic.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int ref_seeds = args.full ? 5 : 3;
  // Paper default: nine adaptive runs per benchmark; --repeats= overrides.
  const int semsim_seeds =
      args.repeats > 0 ? static_cast<int>(args.repeats) : 9;
  // --seed= shifts both seed families together (reference seeds stay
  // disjoint from the adaptive ones).
  const std::uint64_t semsim_seed0 = args.seed > 0 ? args.seed : 100;
  const std::uint64_t ref_seed0 = semsim_seed0 + 8900;
  const ParallelExecutor exec(args.threads);

  std::printf("== Fig. 7: propagation-delay error vs non-adaptive reference ==\n");
  TableWriter table({"junctions", "ref_delay_s", "semsim_delay_s",
                     "semsim_err_pct", "spice_delay_s", "spice_err_pct"});
  table.add_comment("Fig. 7 reproduction; rows in paper order");

  double err_sum = 0.0, spice_err_sum = 0.0;
  int err_n = 0, spice_n = 0;
  std::string scale_bench;  // heaviest benchmark run: scaling self-check target
  std::size_t scale_junctions = 0;

  std::vector<LogicBenchmark> benches = make_all_benchmarks();

  // --checkpoint=FILE: each benchmark's finished row is recorded so an
  // interrupted accuracy run resumes instead of re-simulating.
  std::unique_ptr<RunCheckpoint> cp;
  if (!args.checkpoint.empty()) {
    BinaryWriter fp;
    fp.str("fig7");
    fp.u8(args.full ? 1 : 0);
    fp.u64(static_cast<std::uint64_t>(ref_seeds));
    fp.u64(static_cast<std::uint64_t>(semsim_seeds));
    fp.u64(semsim_seed0);
    fp.u64(benches.size());
    cp = std::make_unique<RunCheckpoint>(
        args.checkpoint, fnv1a64(fp.bytes().data(), fp.bytes().size()),
        benches.size());
  }

  for (std::size_t bi = 0; bi < benches.size(); ++bi) {
    LogicBenchmark& b = benches[bi];
    const std::size_t j = b.netlist.junction_count();
    if (!args.full && b.paper_junctions > 2500) {
      std::printf("[%s] skipped by default (reference runs are expensive at "
                  "%zu junctions); rerun with --full\n",
                  b.name.c_str(), j);
      continue;
    }
    std::printf("[%s] %zu junctions\n", b.name.c_str(), j);
    if (j > scale_junctions) {
      scale_junctions = j;
      scale_bench = b.name;
    }
    if (cp && cp->has(bi)) {
      const std::vector<std::uint8_t> bytes = cp->payload(bi);
      BinaryReader rd(bytes);
      const std::vector<double> row = rd.vec_f64();
      rd.require_done();
      std::printf("  restored from checkpoint %s\n", args.checkpoint.c_str());
      table.add_row(TableWriter::cells(row));
      if (!std::isnan(row[3])) {
        err_sum += row[3];
        ++err_n;
      }
      if (!std::isnan(row[5])) {
        spice_err_sum += row[5];
        ++spice_n;
      }
      continue;
    }
    ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
    auto model = std::make_shared<const ElectrostaticModel>(elab.circuit());

    // The seed loops are the parallel fan-out: each seed is a work unit
    // with its own engine and a (seed0, index)-derived RNG stream, so the
    // delays — and the error percentages below — are identical for every
    // --threads value.
    auto mean_delay = [&](bool adaptive, int n_runs, std::uint64_t seed0) {
      DelayRunConfig cfg;
      cfg.engine.adaptive.enabled = adaptive;
      const MultiSeedDelayResult r = run_delay_experiment_seeds(
          b, elab, model, cfg, seed0, static_cast<std::size_t>(n_runs), exec);
      bench::report_counters(adaptive ? "  semsim seeds" : "  reference seeds",
                             r.counters);
      return r.mean_delay;
    };

    const double ref = mean_delay(false, ref_seeds, ref_seed0);
    const double semsim = mean_delay(true, semsim_seeds, semsim_seed0);
    const double err =
        std::isnan(ref) || std::isnan(semsim)
            ? std::nan("")
            : 100.0 * std::abs(semsim - ref) / ref;

    double spice_delay = std::nan(""), spice_err = std::nan("");
    try {
      const SpiceDelayResult rs = spice_delay_experiment(
          b, SetLogicParams{}, TransientOptions{}, 30e-9, 30e-9 + 2e-6);
      if (!rs.output_valid) {
        // The paper excludes its SPICE failures ("incorrect logic outputs")
        // from the average the same way.
        std::printf("  SPICE: incorrect logic output — excluded, as in the "
                    "paper\n");
      } else {
        spice_delay = rs.delay;
        if (!std::isnan(ref) && !std::isnan(spice_delay)) {
          spice_err = 100.0 * std::abs(spice_delay - ref) / ref;
        }
      }
    } catch (const NumericError& e) {
      std::printf("  SPICE: non-convergence (%s)\n", e.what());
    }

    std::printf("  ref %.3e s | SEMSIM %.3e s (err %.2f%%) | SPICE %.3e s "
                "(err %.2f%%)\n",
                ref, semsim, err, spice_delay, spice_err);
    const std::vector<double> row = {static_cast<double>(j), ref,    semsim,
                                     err,                    spice_delay,
                                     spice_err};
    if (cp) {
      BinaryWriter w;
      w.vec_f64(row);
      cp->record(bi, w.take());
    }
    table.add_row(TableWriter::cells(row));
    if (!std::isnan(err)) {
      err_sum += err;
      ++err_n;
    }
    if (!std::isnan(spice_err)) {
      spice_err_sum += spice_err;
      ++spice_n;
    }
  }

  // Scaling self-check: the same 9-seed adaptive run serially vs with the
  // requested pool, on the heaviest benchmark that ran (small benchmarks
  // finish in milliseconds per seed and the longest single seed bounds the
  // speedup). Delays are identical by construction; only the wall time
  // (reported by the counters) changes.
  if (exec.threads() > 1 && !scale_bench.empty()) {
    for (LogicBenchmark& b0 : make_all_benchmarks()) {
      if (b0.name != scale_bench) continue;
      ElaboratedCircuit elab0 = elaborate(b0.netlist, SetLogicParams{});
      auto model0 = std::make_shared<const ElectrostaticModel>(elab0.circuit());
      DelayRunConfig cfg;
      cfg.engine.adaptive.enabled = true;
      const ParallelExecutor serial(1);
      const MultiSeedDelayResult r1 = run_delay_experiment_seeds(
          b0, elab0, model0, cfg, semsim_seed0, semsim_seeds, serial);
      const MultiSeedDelayResult rn = run_delay_experiment_seeds(
          b0, elab0, model0, cfg, semsim_seed0, semsim_seeds, exec);
      std::printf("scaling [%s]: 9-seed run %.3f s at 1 thread, %.3f s at %u "
                  "threads -> %.2fx speedup (identical delays: %s)\n",
                  b0.name.c_str(), r1.counters.wall_seconds,
                  rn.counters.wall_seconds, rn.counters.threads,
                  r1.counters.wall_seconds / rn.counters.wall_seconds,
                  r1.delays == rn.delays ? "yes" : "NO");
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw < exec.threads()) {
        std::printf("  note: host exposes %u hardware thread(s) — wall-clock "
                    "speedup needs a multicore host; results are identical "
                    "either way\n",
                    hw);
      }
      break;
    }
  }

  bench::emit(args, "fig7_accuracy", table);
  if (err_n > 0) {
    std::printf("SEMSIM average delay error: %.2f%%  (paper: 3.30%%)\n",
                err_sum / err_n);
  }
  if (spice_n > 0) {
    std::printf("SPICE  average delay error: %.2f%%  (paper: 9.18%%)\n",
                spice_err_sum / spice_n);
  }
  return 0;
}
