// Fig. 5 — SSET stability map (current vs bias and gate voltage) for the
// Manninen et al. setup the paper reproduces qualitatively:
//   T = 0.52 K, R1 = R2 = 210 kOhm, C1 = C2 = 110 aF, Cg = 14 aF,
//   Delta(0.52 K) = 0.21 meV, background charge Qb = 0.65 e,
//   bias on the source lead (drain grounded), V_bias in [0.4, 1.6] mV,
//   V_gate in [0, 10] mV.
//
// Expected features (all emergent, nothing hand-placed):
//  * quasi-particle threshold ridge (paper: dotted/solid circles),
//  * JQP ridges where a Cooper-pair resonance crosses the map (open
//    triangles) — the bench prints the analytic resonance lines
//    dW_cp = 0 next to the measured ridge maxima,
//  * thermally excited singularity-matching ridges below threshold
//    (solid diamonds), absent at T = 0.
#include <cmath>
#include <cstdio>

#include "analysis/current.h"
#include "analysis/sweep.h"
#include "base/constants.h"
#include "bench_util.h"
#include "core/engine.h"
#include "netlist/circuit.h"
#include "netlist/electrostatics.h"
#include "physics/bcs.h"

using namespace semsim;

namespace {

constexpr double kTemp = 0.52;
constexpr double kTc = 1.2;
constexpr double kRj = 2.1e5;
constexpr double kCj = 110e-18;
constexpr double kCg = 14e-18;
constexpr double kQb = 0.65;

// Delta0 chosen so Delta(0.52 K) equals the paper's quoted 0.21 meV.
double delta0() {
  const double target = 0.21e-3 * kElectronVolt;
  return target / std::tanh(1.74 * std::sqrt(kTc / kTemp - 1.0));
}

struct Device {
  Circuit c;
  NodeId src = 0, drn = 0, gate = 0, island = 0;
};

Device make_sset() {
  Device d;
  d.src = d.c.add_external("src");
  d.drn = d.c.add_external("drn");
  d.gate = d.c.add_external("gate");
  d.island = d.c.add_island("island");
  d.c.add_junction(d.src, d.island, kRj, kCj);   // junction 0
  d.c.add_junction(d.island, d.drn, kRj, kCj);   // junction 1
  d.c.add_capacitor(d.gate, d.island, kCg);
  d.c.set_background_charge(d.island, kQb);
  d.c.set_superconducting({delta0(), kTc});
  return d;
}

// Analytic Cooper-pair resonance bias for junction `src_side` and island
// occupation n: dW_cp = -2e (v_isl - v_lead) + 4u = 0 solved for V_bias.
double jqp_resonance_bias(const ElectrostaticModel& m, const Device& d, int n,
                          bool src_side, double vg) {
  const double e = kElementaryCharge;
  const double kappa = m.kappa_node(d.island, d.island);
  const double u = 0.5 * e * e * kappa;
  const double s_src = m.source_gain()(0, 0);   // dv_isl / dV_src
  const double s_gate = m.source_gain()(0, 2);  // dv_isl / dV_gate
  const double q = e * (kQb - static_cast<double>(n));
  // v_isl = kappa q + s_src Vb + s_gate Vg; lead voltage = Vb (src) or 0.
  const double base = kappa * q + s_gate * vg;
  if (src_side) {
    // -2e (v_isl - Vb) + 4u = 0  ->  Vb (s_src - 1) = 2u/e - base
    return (2.0 * u / e - base) / (s_src - 1.0);
  }
  // drain side: -2e (v_isl) + 4u = 0 (lead at 0) -> Vb s_src = 2u/e - base
  return (2.0 * u / e - base) / s_src;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::size_t nb = args.full ? 61 : 31;
  const std::size_t ng = args.full ? 41 : 21;
  const std::uint64_t events = args.full ? 60000 : 15000;

  const double gap = bcs_gap(delta0(), kTc, kTemp);
  std::printf("== Fig. 5: SSET stability map (Manninen-type experiment) ==\n");
  std::printf("# Delta(T=0.52K) = %.4f meV (paper: 0.21), E_c = %.4f meV\n",
              gap / kMilliElectronVolt,
              kElementaryCharge * kElementaryCharge / (2.0 * (2.0 * kCj + kCg)) /
                  kMilliElectronVolt);

  Device dev = make_sset();
  EngineOptions o;
  o.temperature = kTemp;
  o.qp_table_half_range = 20.0 * gap;

  StabilityMapConfig cfg;
  cfg.bias_node = dev.src;
  cfg.mirror = -1;  // drain grounded, as in the experiment
  cfg.gate_node = dev.gate;
  for (std::size_t b = 0; b < nb; ++b) {
    cfg.bias_values.push_back(0.4e-3 +
                              static_cast<double>(b) * 1.2e-3 /
                                  static_cast<double>(nb - 1));
  }
  for (std::size_t g = 0; g < ng; ++g) {
    cfg.gate_values.push_back(static_cast<double>(g) * 0.010 /
                              static_cast<double>(ng - 1));
  }
  cfg.probes = {{0, 1.0}, {1, 1.0}};
  cfg.measure = CurrentMeasureConfig{events / 10, events, 6};

  // One work unit per gate row, row seeds derived from base seed 11: the
  // grid is identical for every --threads value.
  const ParallelExecutor exec(args.threads);
  RunCounters counters;
  ParallelSweepConfig par;
  par.base_seed = 11;
  const auto map = run_stability_map(dev.c, o, cfg, exec, par, &counters);
  bench::report_counters("fig5 grid", counters);

  TableWriter grid({"vgate_V", "vbias_V", "abs_current_A"});
  grid.add_comment("Fig. 5 reproduction: |I|(V_bias, V_gate), log-scale contour");
  for (std::size_t g = 0; g < ng; ++g) {
    for (std::size_t b = 0; b < nb; ++b) {
      grid.add_row({cfg.gate_values[g], cfg.bias_values[b], map[g][b]});
    }
  }
  bench::emit(args, "fig5_contour", grid);

  // Feature extraction: per gate row, the measured ridge maximum plus the
  // analytic JQP resonance lines.
  const ElectrostaticModel model(dev.c);
  TableWriter feats({"vgate_V", "vbias_ridge_meas_V", "ridge_current_A",
                     "jqp_src_n0_V", "jqp_drn_n0_V", "jqp_src_n1_V"});
  feats.add_comment("measured sub-threshold ridge vs analytic CP resonances");
  for (std::size_t g = 0; g < ng; ++g) {
    std::size_t best = 0;
    for (std::size_t b = 1; b + 1 < nb; ++b) {
      // local maximum in bias, away from the high-bias threshold shoulder
      if (map[g][b] > map[g][best] && map[g][b] > map[g][b + 1] &&
          map[g][b] > map[g][b - 1]) {
        best = b;
      }
    }
    feats.add_row({cfg.gate_values[g], cfg.bias_values[best], map[g][best],
                   jqp_resonance_bias(model, dev, 0, true, cfg.gate_values[g]),
                   jqp_resonance_bias(model, dev, 0, false, cfg.gate_values[g]),
                   jqp_resonance_bias(model, dev, 1, true, cfg.gate_values[g])});
  }
  bench::emit(args, "fig5_features", feats);

  // Singularity-matching existence check: sub-gap current at finite T must
  // exceed the T -> 0 limit by orders of magnitude (thermally excited
  // quasi-particles, paper's solid diamonds).
  double sum_subgap = 0.0;
  for (std::size_t g = 0; g < ng; ++g) sum_subgap += map[g][nb / 4];
  std::printf("check: mean sub-gap |I| at Vb = %.2f mV: %.3e A (finite-T "
              "transport modes present)\n",
              1e3 * cfg.bias_values[nb / 4], sum_subgap / static_cast<double>(ng));
  return 0;
}
