// Ablation — sensitivity to the adaptive threshold alpha (Algorithm 1).
//
// Smaller alpha flags more junctions per event (more work, less error);
// larger alpha lets rates go stale between periodic refreshes. The paper
// fixes one operating point; this ablation maps the speed/accuracy knob on
// the 74148 benchmark: rate evaluations per event and the propagation-delay
// error against the non-adaptive reference.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "analysis/delay.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int seeds = args.full ? 15 : 11;

  LogicBenchmark b = make_benchmark("74148");
  ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
  auto model = std::make_shared<const ElectrostaticModel>(elab.circuit());

  auto mean_delay = [&](bool adaptive, double alpha, std::uint64_t* evals,
                        std::uint64_t* events) {
    double acc = 0.0;
    int n = 0;
    std::uint64_t ev_sum = 0, e_sum = 0;
    for (int s = 0; s < seeds; ++s) {
      DelayRunConfig cfg;
      cfg.engine.adaptive.enabled = adaptive;
      cfg.engine.adaptive.threshold = alpha;
      cfg.seed = 40 + static_cast<std::uint64_t>(s);
      const DelayRunResult r = run_delay_experiment(b, elab, model, cfg);
      if (delay_valid(r.delay)) {
        acc += r.delay;
        ++n;
      }
      ev_sum += r.stats.rate_evaluations;
      e_sum += r.stats.events;
    }
    if (evals) *evals = ev_sum;
    if (events) *events = e_sum;
    return n ? acc / n : std::nan("");
  };

  std::uint64_t ref_evals = 0, ref_events = 0;
  const double ref = mean_delay(false, 0.05, &ref_evals, &ref_events);
  std::printf("== Ablation: adaptive threshold alpha (74148, %zu junctions) ==\n",
              b.netlist.junction_count());
  std::printf("non-adaptive reference: delay = %.3e s, evals/event = %.1f\n",
              ref,
              static_cast<double>(ref_evals) / static_cast<double>(ref_events));

  TableWriter table({"alpha", "delay_s", "err_pct", "evals_per_event",
                     "work_saving_x"});
  table.add_comment("74148; delay error vs non-adaptive, work per event");
  for (const double alpha : {0.005, 0.02, 0.05, 0.1, 0.2, 0.5}) {
    std::uint64_t evals = 0, events = 0;
    const double d = mean_delay(true, alpha, &evals, &events);
    const double per_event =
        static_cast<double>(evals) / static_cast<double>(events);
    const double err = 100.0 * std::abs(d - ref) / ref;
    const double saving = (static_cast<double>(ref_evals) /
                           static_cast<double>(ref_events)) /
                          per_event;
    std::printf("alpha=%.3f: delay %.3e s (err %.2f%%), evals/event %.2f "
                "(%.1fx less work)\n",
                alpha, d, err, per_event, saving);
    table.add_row({alpha, d, err, per_event, saving});
  }
  bench::emit(args, "ablation_threshold", table);
  return 0;
}
