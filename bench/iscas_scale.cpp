// ISCAS-scale cases for the perf gate: solo engine vs PartitionedEngine on
// the same multi-block logic fabric.
//
// The workload is the cuttable stand-in for the paper's large ISCAS'85
// netlists: N disjoint 512-junction random-logic blocks
// (make_random_logic_blocks) elaborated into one SET circuit, then tied
// into a single weakly-coupled fabric by 0.5 aF wire couplers between the
// chain outputs of adjacent blocks — exactly the coupling regime the
// partition planner is built to cut (two orders of magnitude below the
// 300 aF wire self-capacitance). Every block's chain input is driven by a
// phase-staggered pulse train so all clusters carry comparable switching
// activity; a single toggled block would hand the partitioned run a
// degenerate one-hot load profile and the comparison would measure the
// barrier, not the decomposition.
//
// Both sides run the NON-adaptive solver: that is the regime where solo
// cost is O(total junctions) per event and the decomposition's O(cluster
// junctions) is the whole point (partition.h header). The speedup is
// algorithmic, not thread-parallel — it holds at any executor width.
#include "iscas_scale.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "base/error.h"
#include "base/thread_pool.h"
#include "core/engine.h"
#include "core/partition.h"
#include "logic/elaborate.h"
#include "logic/random_logic.h"
#include "netlist/electrostatics.h"

namespace semsim::bench {
namespace {

/// Wire coupler between adjacent blocks' chain outputs [F]; ~0.5 aF
/// against 300 aF wire loads, far under the planner's default cut
/// threshold.
constexpr double kInterBlockCouplingF = 0.5e-18;

/// Chain-input pulse period [s] (same order as the Fig. 6 activity).
constexpr double kPulsePeriod = 20e-9;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t total_rate_evals(const SolverStats& s) {
  return s.rate_evaluations + s.cp_rate_evaluations + s.cot_rate_evaluations;
}

struct IscasFabric {
  RandomLogicBlocks blocks;
  std::unique_ptr<ElaboratedCircuit> elab;
  std::shared_ptr<const ElectrostaticModel> model;
  std::size_t junctions = 0;  ///< netlist junction count (512 x blocks)
};

IscasFabric make_fabric(std::size_t n_blocks) {
  IscasFabric f;
  RandomLogicSpec per_block;
  per_block.target_junctions = 512;
  per_block.seed = 7;
  f.blocks = make_random_logic_blocks(per_block, n_blocks);
  f.junctions = f.blocks.netlist.junction_count();

  const SetLogicParams params{};
  f.elab = std::make_unique<ElaboratedCircuit>(
      elaborate(f.blocks.netlist, params));
  Circuit& c = f.elab->circuit();

  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    c.add_capacitor(f.elab->node(f.blocks.chain_out[b]),
                    f.elab->node(f.blocks.chain_out[b + 1]),
                    kInterBlockCouplingF);
  }

  // Phase-staggered pulse on every block's chain input (input 0 of the
  // block), DC ground on the rest.
  const auto& ins = f.blocks.netlist.inputs();
  const std::size_t per_block_inputs = ins.size() / n_blocks;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const NodeId node = f.elab->node(ins[i]);
    if (i % per_block_inputs == 0) {
      const std::size_t b = i / per_block_inputs;
      const double delay =
          kPulsePeriod * static_cast<double>(b) / static_cast<double>(n_blocks);
      c.set_source(node, Waveform::pulse(0.0, params.vdd, delay,
                                         0.5 * kPulsePeriod, kPulsePeriod));
    } else {
      c.set_source(node, Waveform::dc(0.0));
    }
  }
  c.build_caches();
  f.model = std::make_shared<const ElectrostaticModel>(c);
  return f;
}

EngineOptions iscas_engine_options(bool fast_rates) {
  EngineOptions o;
  o.temperature = SetLogicParams{}.temperature;
  o.adaptive.enabled = false;
  o.fast_rates = fast_rates;
  o.seed = 1;
  return o;
}

/// Best-of-3 steady-state timing shared by both sides. `step` executes one
/// chunk of work and returns the events it ran; `stats` reads the
/// cumulative work counters. Both engines warm up past the cold-start
/// glitch-settling transient (neither side gets the testbench pre-seed:
/// PartitionedEngine owns its cluster states, so warmup is the level
/// playing field) before the timed windows.
void measure_best_of_3(GateCase& r, const char* who,
                       const std::function<std::uint64_t()>& step,
                       const std::function<SolverStats()>& stats) {
  std::uint64_t warmed = 0;
  while (warmed < 4000) {
    const std::uint64_t n = step();
    require(n > 0, std::string("iscas_scale: ") + who + " stuck in warmup");
    warmed += n;
  }
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t evals_before = total_rate_evals(stats());
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t events = 0;
    double dt = 0.0;
    do {
      const std::uint64_t n = step();
      require(n > 0, std::string("iscas_scale: ") + who + " stuck in window");
      events += n;
      dt = seconds_since(t0);
    } while (dt < 0.1);
    const double evps = static_cast<double>(events) / dt;
    if (evps > r.events_per_sec) {
      r.events_per_sec = evps;
      const std::uint64_t evals = total_rate_evals(stats()) - evals_before;
      r.ns_per_rate_eval =
          evals > 0 ? dt * 1e9 / static_cast<double>(evals) : 0.0;
    }
  }
}

GateCase measure_solo(const IscasFabric& f, bool fast_rates) {
  GateCase r;
  r.name = "iscas_blocks_" + std::to_string(f.junctions);
  r.adaptive = false;
  Engine e(f.elab->circuit(), iscas_engine_options(fast_rates), f.model);
  measure_best_of_3(
      r, "solo engine", [&] { return e.run_events(256); },
      [&] { return e.stats(); });
  return r;
}

GateCase measure_partitioned(const IscasFabric& f, bool fast_rates,
                             std::uint32_t clusters,
                             const ParallelExecutor& exec) {
  GateCase r;
  r.name = "iscas_blocks_" + std::to_string(f.junctions) + "_part" +
           std::to_string(clusters);
  r.adaptive = false;
  r.partitions = static_cast<int>(clusters);

  PartitionSpec spec;
  spec.enabled = true;
  spec.clusters = clusters;
  PartitionedEngine part(f.elab->circuit(), *f.model,
                         iscas_engine_options(fast_rates), spec, &exec);
  // The fabric must actually decompose; a plan that glued the blocks
  // together would silently benchmark solo-vs-solo.
  require(part.clusters() == clusters,
          "iscas_scale: planner did not split the fabric into the requested "
          "clusters");
  measure_best_of_3(
      r, "partitioned engine", [&] { return part.advance_window(256); },
      [&] { return part.merged_stats(); });
  return r;
}

void report(const GateCase& c) {
  std::printf("# %-32s %12.0f ev/s  %8.1f ns/rate-eval  partitions %d\n",
              c.name.c_str(), c.events_per_sec, c.ns_per_rate_eval,
              c.partitions);
}

}  // namespace

void append_iscas_cases(std::vector<GateCase>& cases, bool fast_rates) {
  const ParallelExecutor exec(8);

  {
    const IscasFabric f = make_fabric(2);
    cases.push_back(measure_solo(f, fast_rates));
    report(cases.back());
    cases.push_back(measure_partitioned(f, fast_rates, 2, exec));
    report(cases.back());
  }

  const IscasFabric f = make_fabric(8);
  const GateCase solo = measure_solo(f, fast_rates);
  cases.push_back(solo);
  report(solo);
  const GateCase part = measure_partitioned(f, fast_rates, 8, exec);
  cases.push_back(part);
  report(part);

  // PR 10 acceptance: at ~4k junctions the 8-cluster decomposition must
  // beat the solo engine by at least 3x events/sec. The win is per-event
  // work (O(cluster) vs O(total) rate re-evaluation), so it must hold even
  // on a single hardware thread — fail loudly rather than record a
  // baseline that blesses a regressed decomposition.
  std::printf("# %-32s %12.0f ev/s partitioned vs %12.0f solo (%.2fx)\n",
              "iscas_4096_speedup", part.events_per_sec, solo.events_per_sec,
              solo.events_per_sec > 0.0
                  ? part.events_per_sec / solo.events_per_sec
                  : 0.0);
  require(part.events_per_sec >= 3.0 * solo.events_per_sec,
          "iscas_scale: partitioned 4096-junction run did not reach 3x the "
          "solo events/sec");
}

}  // namespace semsim::bench
