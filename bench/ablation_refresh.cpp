// Ablation — sensitivity to the periodic full-refresh interval.
//
// The adaptive solver's error is cumulative (paper Sec. III-B), so all
// rates are recomputed every `refresh_interval` events. Shorter intervals
// cost work; longer ones let untested junctions drift. Mapped on the 74148
// benchmark like ablation_threshold.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "analysis/delay.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int seeds = args.full ? 9 : 5;

  LogicBenchmark b = make_benchmark("74148");
  ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
  auto model = std::make_shared<const ElectrostaticModel>(elab.circuit());

  auto mean_delay = [&](bool adaptive, std::uint64_t refresh,
                        std::uint64_t* evals, std::uint64_t* events) {
    double acc = 0.0;
    int n = 0;
    std::uint64_t ev_sum = 0, e_sum = 0;
    for (int s = 0; s < seeds; ++s) {
      DelayRunConfig cfg;
      cfg.engine.adaptive.enabled = adaptive;
      cfg.engine.adaptive.refresh_interval = refresh;
      cfg.seed = 70 + static_cast<std::uint64_t>(s);
      const DelayRunResult r = run_delay_experiment(b, elab, model, cfg);
      if (delay_valid(r.delay)) {
        acc += r.delay;
        ++n;
      }
      ev_sum += r.stats.rate_evaluations;
      e_sum += r.stats.events;
    }
    if (evals) *evals = ev_sum;
    if (events) *events = e_sum;
    return n ? acc / n : std::nan("");
  };

  std::uint64_t ref_evals = 0, ref_events = 0;
  const double ref = mean_delay(false, 1000, &ref_evals, &ref_events);
  std::printf("== Ablation: periodic refresh interval (74148) ==\n");
  std::printf("non-adaptive reference: delay = %.3e s\n", ref);

  TableWriter table({"refresh_events", "delay_s", "err_pct", "evals_per_event"});
  table.add_comment("74148; alpha = 0.05 fixed");
  for (const std::uint64_t refresh :
       {std::uint64_t{100}, std::uint64_t{300}, std::uint64_t{1000},
        std::uint64_t{3000}, std::uint64_t{10000}, std::uint64_t{100000}}) {
    std::uint64_t evals = 0, events = 0;
    const double d = mean_delay(true, refresh, &evals, &events);
    const double per_event =
        static_cast<double>(evals) / static_cast<double>(events);
    const double err = 100.0 * std::abs(d - ref) / ref;
    std::printf("refresh=%llu: delay %.3e s (err %.2f%%), evals/event %.2f\n",
                static_cast<unsigned long long>(refresh), d, err, per_event);
    table.add_row({static_cast<double>(refresh), d, err, per_event});
  }
  bench::emit(args, "ablation_refresh", table);
  return 0;
}
