// Sec. IV-A (text) — cotunneling accuracy validation.
//
// The paper validates cotunneling "against analytic approximations and SIMON
// results ... excellent agreement was observed". SIMON is unavailable
// offline, so the stronger oracle is used: deep in Coulomb blockade at
// T = 0 the Monte-Carlo process is pure Poisson cotunneling whose rate has
// the closed form of physics/cotunneling.h, and the I-V must follow the
// classic I ~ V^3 law (Averin-Nazarov).
#include <cmath>
#include <cstdio>

#include "analysis/current.h"
#include "base/constants.h"
#include "bench_util.h"
#include "core/engine.h"
#include "netlist/circuit.h"
#include "physics/cotunneling.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::uint64_t events = args.full ? 60000 : 15000;
  const double c_sigma = 5e-18;
  const double u = kElementaryCharge * kElementaryCharge / (2.0 * c_sigma);

  std::printf("== Cotunneling validation: blockaded SET at T = 0 ==\n");
  TableWriter table({"vds_V", "i_mc_A", "i_analytic_A", "ratio"});
  table.add_comment("MC cotunneling current vs closed-form rate; deep blockade, T = 0");

  std::vector<double> log_v, log_i;
  for (double v_half = 0.001; v_half <= 0.0071; v_half += 0.001) {
    Circuit c;
    const NodeId src = c.add_external("src");
    const NodeId drn = c.add_external("drn");
    const NodeId gate = c.add_external("gate");
    const NodeId island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_half));
    c.set_source(drn, Waveform::dc(-v_half));

    EngineOptions o;
    o.temperature = 0.0;
    o.cotunneling = true;
    o.seed = 5;
    Engine e(c, o);
    const CurrentEstimate est = measure_mean_current(
        e, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{events / 20, events, 6});

    const double e1 = -kElementaryCharge * v_half + u;
    const double dw = -kElementaryCharge * 2.0 * v_half;
    const double analytic =
        kElementaryCharge * cotunneling_rate(dw, e1, e1, 1e6, 1e6, 0.0);

    table.add_row({2.0 * v_half, est.mean, analytic, est.mean / analytic});
    log_v.push_back(std::log(2.0 * v_half));
    log_i.push_back(std::log(std::abs(est.mean)));
  }
  bench::emit(args, "cotunneling_validation", table);

  // Least-squares slope of log I vs log V: the V^3 law (exact exponent is
  // slightly above 3 because the intermediate energies soften with bias).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(log_v.size());
  for (std::size_t i = 0; i < log_v.size(); ++i) {
    sx += log_v[i];
    sy += log_i[i];
    sxx += log_v[i] * log_v[i];
    sxy += log_v[i] * log_i[i];
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::printf("log-log slope of the blockade I-V: %.3f (Averin-Nazarov: ~3)\n",
              slope);
  return 0;
}
