// perf_gate — the hot-path performance gate.
//
// Times the Monte-Carlo event loop on the Fig. 4/6 chain circuits (the
// workload the structure-of-arrays channel refactor targets) and emits a
// machine-readable baseline document, BENCH_hotpath.json:
//
//   ./perf_gate --out=BENCH_hotpath.json            # record a baseline
//   ./perf_gate --baseline=BENCH_hotpath.json       # gate against it
//
// Per case it reports steady-state events/sec (best of several timed
// windows, which damps scheduler jitter), ns per rate evaluation, and the
// flagged fraction (junctions flagged / junctions tested) of the adaptive
// solver. One end-to-end case runs a small IV sweep through the
// RunRequest -> run() -> RunResult facade and reads its numbers back out
// of the versioned JSON document (io/json.h) — the same artifact CI
// tooling consumes — instead of scraping the TSV output.
//
// With --baseline=FILE the gate fails (exit 1) when any case's events/sec
// drops below (1 - tolerance) x the baseline value. The default tolerance
// of 25% (--tolerance=0.25) absorbs run-to-run and machine-to-machine
// jitter; real hot-path regressions from the SoA layout show up far above
// that (the refactor itself moved the 1024-stage chain by >30%).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/api.h"
#include "base/error.h"
#include "bench_util.h"
#include "core/engine.h"
#include "core/ensemble.h"
#include "gate_case.h"
#include "io/json.h"
#include "iscas_scale.h"
#include "netlist/parser.h"

namespace semsim {
namespace {

// GateCase and the schema tag (with its version history) live in
// gate_case.h, shared with the ISCAS-scale cases in iscas_scale.cpp.
using bench::GateCase;
constexpr const char* kSchema = bench::kGateSchema;

/// Inter-island coupling for the ADAPTIVE chain cases: strong enough that
/// every event gets the neighbours' junctions tested, weak enough that the
/// test usually clears — flagged_fraction lands strictly inside (0, 1).
/// Non-adaptive cases keep the uncoupled circuit so events/sec comparisons
/// against pre-coupling baselines stay apples-to-apples.
constexpr double kAdaptiveCouplingF = 0.5e-18;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t total_rate_evals(const SolverStats& s) {
  return s.rate_evaluations + s.cp_rate_evaluations + s.cot_rate_evaluations;
}

/// Steady-state stepping rate of one engine configuration: warm up past the
/// transient, calibrate a ~100 ms window, then keep the best of three
/// windows (the one least disturbed by the scheduler).
GateCase measure_engine_case(int stages, bool adaptive, bool fast_rates,
                             double temperature = 0.0) {
  GateCase r;
  r.name = (adaptive ? "chain_adaptive_" : "chain_nonadaptive_") +
           std::to_string(stages);
  if (temperature > 0.0) {
    // Thermal cases carry their kernel variant in the name: they appear in
    // BOTH gate modes (the warm-fast case runs the fast kernel even in an
    // exact-mode gate), so the name — not rates_mode — keys the comparison.
    r.name += fast_rates ? "_warm_fast" : "_warm_exact";
  }
  r.stages = stages;
  r.adaptive = adaptive;

  const Circuit c =
      bench::chain_circuit(stages, adaptive ? kAdaptiveCouplingF : 0.0);
  EngineOptions o;
  o.temperature = temperature;
  o.adaptive.enabled = adaptive;
  o.fast_rates = fast_rates;
  Engine e(c, o);

  for (int i = 0; i < 2000; ++i) require(e.step(), "perf_gate: engine stuck");

  const auto cal0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) require(e.step(), "perf_gate: engine stuck");
  const double per_event = seconds_since(cal0) / 1000.0;
  std::uint64_t window =
      static_cast<std::uint64_t>(0.1 / per_event);
  if (window < 1000) window = 1000;
  if (window > 20000000) window = 20000000;

  for (int rep = 0; rep < 3; ++rep) {
    const SolverStats before = e.stats();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < window; ++i) {
      require(e.step(), "perf_gate: engine stuck");
    }
    const double dt = seconds_since(t0);
    const double evps = static_cast<double>(window) / dt;
    if (evps > r.events_per_sec) {
      r.events_per_sec = evps;
      const std::uint64_t evals =
          total_rate_evals(e.stats()) - total_rate_evals(before);
      r.ns_per_rate_eval =
          evals > 0 ? dt * 1e9 / static_cast<double>(evals) : 0.0;
    }
  }
  const SolverStats s = e.stats();
  if (s.junctions_tested > 0) {
    r.flagged_fraction = static_cast<double>(s.junctions_flagged) /
                         static_cast<double>(s.junctions_tested);
  }
  return r;
}

/// Ensemble lockstep case (ROADMAP item 3): `replicas` copies of the warm
/// adaptive chain advance in event rounds through core/ensemble.h — ONE
/// fused tunnel_rates_batch_replicas pass per round over the replica-major
/// arena. Pinned to the fast kernel at 4.2 K (like the _warm_fast cases, the
/// name keys the comparison across gate modes): the thermal fast kernel is
/// the regime the fused pass amortizes. ns_per_rate_eval is the fused cost
/// per evaluation across the whole ensemble; the in-run require() demands it
/// land strictly below the solo engine's cost on the identical
/// configuration — if batching across replicas ever becomes a tax instead
/// of an amortization, the gate fails without needing a baseline.
GateCase measure_ensemble_case(int stages, int replicas) {
  GateCase r;
  r.name = "ensemble_chain_adaptive_" + std::to_string(stages) + "_x" +
           std::to_string(replicas);
  r.stages = stages;
  r.adaptive = true;

  const Circuit c = bench::chain_circuit(stages, kAdaptiveCouplingF);
  EngineOptions o;
  o.temperature = 4.2;
  o.adaptive.enabled = true;
  o.fast_rates = true;

  // Replicas run as gangs of four: wide enough that the arena pack feeds
  // the rate kernel's 4-wide vector path whole groups, narrow enough that a
  // gang's lane state survives the round-robin in L1 (8- and 16-lane gangs
  // measured strictly worse — the extra kernel amortization loses to cache
  // thrash). The lanes also share ONE electrostatic model (like the driver
  // when capacitances are unperturbed): the kappa matrix of a 256-stage
  // chain is ~0.5 MB, and a per-lane copy would turn the gang's row reads
  // into a cache fight no real ensemble run pays.
  constexpr int kTile = 4;
  const auto model = std::make_shared<const ElectrostaticModel>(c);
  std::deque<Engine> engines;  // stable addresses for the lane pointers
  std::deque<EnsembleEngine> gangs;
  for (int base = 0; base < replicas; base += kTile) {
    std::vector<Engine*> lanes;
    for (int i = base; i < base + kTile && i < replicas; ++i) {
      EngineOptions oi = o;
      oi.seed = static_cast<std::uint64_t>(1 + i);
      engines.emplace_back(c, oi, model);
      lanes.push_back(&engines.back());
    }
    gangs.emplace_back(std::move(lanes), /*fast_rates=*/true);
  }

  auto stats_sum = [&engines] {
    std::uint64_t evals = 0;
    for (const Engine& e : engines) evals += total_rate_evals(e.stats());
    return evals;
  };

  for (EnsembleEngine& g : gangs) {
    require(g.run_events(2000) > 0, "perf_gate: ensemble stuck in warmup");
  }

  const auto cal0 = std::chrono::steady_clock::now();
  for (EnsembleEngine& g : gangs) {
    require(g.run_events(100) > 0, "perf_gate: ensemble stuck in calibration");
  }
  const double per_round =
      seconds_since(cal0) / (100.0 * static_cast<double>(gangs.size()));
  std::uint64_t window = static_cast<std::uint64_t>(
      0.1 / (per_round * static_cast<double>(gangs.size())));
  if (window < 50) window = 50;
  if (window > 200000) window = 200000;

  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t evals_before = stats_sum();
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t lane_events = 0;
    for (EnsembleEngine& g : gangs) lane_events += g.run_events(window);
    const double dt = seconds_since(t0);
    require(lane_events > 0, "perf_gate: ensemble stuck in timed window");
    const double evps = static_cast<double>(lane_events) / dt;
    if (evps > r.events_per_sec) {
      r.events_per_sec = evps;
      const std::uint64_t evals = stats_sum() - evals_before;
      r.ns_per_rate_eval =
          evals > 0 ? dt * 1e9 / static_cast<double>(evals) : 0.0;
    }
  }

  std::uint64_t tested = 0;
  std::uint64_t flagged = 0;
  for (const Engine& e : engines) {
    tested += e.stats().junctions_tested;
    flagged += e.stats().junctions_flagged;
  }
  if (tested > 0) {
    r.flagged_fraction =
        static_cast<double>(flagged) / static_cast<double>(tested);
  }

  // Acceptance criterion of the ensemble engine: the fused replica-major
  // pass must be strictly cheaper per rate evaluation than running one
  // replica solo (same circuit, kernel, and temperature), measured back to
  // back in this very process.
  const GateCase solo = measure_engine_case(stages, /*adaptive=*/true,
                                            /*fast_rates=*/true,
                                            /*temperature=*/4.2);
  std::printf("# %-32s %10.1f ns/rate-eval fused vs %8.1f solo\n",
              r.name.c_str(), r.ns_per_rate_eval, solo.ns_per_rate_eval);
  require(r.ns_per_rate_eval > 0.0 &&
              r.ns_per_rate_eval < solo.ns_per_rate_eval,
          "perf_gate: fused ensemble rate pass is not cheaper per evaluation "
          "than the solo engine");
  return r;
}

/// The paper's Example Input File 1 (double junction SET) with a short
/// sweep budget: enough events to time the whole facade path without
/// dominating the gate's runtime.
constexpr const char* kSetSweepInput = R"(
junc 1 1 4 1meg 1e-18
junc 2 4 2 1meg 1e-18
cap 3 4 3e-18
charge 4 0.0
vdc 1 0.02
vdc 2 -0.02
vdc 3 0.0
symm 1
num j 2
num ext 3
num nodes 4
temp 5
record 1 2
jumps 20000 1
sweep 2 0.02 0.004
)";

/// End-to-end case: the facade runs a parallel IV sweep and the gate reads
/// events and wall seconds back out of the versioned RunResult JSON.
GateCase measure_facade_case(bool fast_rates) {
  GateCase r;
  r.name = "facade_set_sweep";
  r.adaptive = true;

  RunRequest req;
  req.input = parse_simulation_input(std::string(kSetSweepInput));
  req.seed = 1;
  req.fast_rates = fast_rates;
  const RunResult res = run(req);

  const JsonValue doc = JsonValue::parse(res.to_json());
  require(doc.at("schema").as_string() == RunResult::kJsonSchema,
          "perf_gate: unexpected RunResult schema");
  const JsonValue& counters = doc.at("counters");
  const double events = counters.at("events").as_number();
  const double wall = counters.at("wall_seconds").as_number();
  const double evals = counters.at("rate_evaluations").as_number();
  r.events_per_sec = wall > 0.0 ? events / wall : 0.0;
  r.ns_per_rate_eval = evals > 0.0 ? wall * 1e9 / evals : 0.0;
  const double tested = doc.at("stats").at("junctions_tested").as_number();
  const double flagged = doc.at("stats").at("junctions_flagged").as_number();
  if (tested > 0.0) r.flagged_fraction = flagged / tested;
  return r;
}

std::string cases_to_json(const std::vector<GateCase>& cases, double tolerance,
                          bool fast_rates) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.field("rates_mode", fast_rates ? "fast" : "exact");
  w.field("tolerance", tolerance);
  w.key("cases").begin_array();
  for (const GateCase& c : cases) {
    w.begin_object();
    w.field("name", c.name);
    w.field("stages", c.stages);
    w.field("adaptive", c.adaptive);
    w.field("partitions", c.partitions);
    w.field("events_per_sec", c.events_per_sec);
    w.field("ns_per_rate_eval", c.ns_per_rate_eval);
    if (c.flagged_fraction >= 0.0) {
      w.field("flagged_fraction", c.flagged_fraction);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

/// Compares against a recorded baseline; returns the number of regressed
/// cases. A baseline case with no current counterpart is a failure too —
/// silently dropping a case would hollow out the gate.
int gate_against(const std::vector<GateCase>& cases,
                 const std::string& baseline_path, double tolerance,
                 bool fast_rates) {
  std::ifstream f(baseline_path, std::ios::binary);
  require(static_cast<bool>(f), "perf_gate: cannot read " + baseline_path);
  std::ostringstream ss;
  ss << f.rdbuf();
  const JsonValue doc = JsonValue::parse(ss.str());
  require(doc.at("schema").as_string() == kSchema,
          "perf_gate: baseline schema mismatch");
  require(doc.at("rates_mode").as_string() ==
              (fast_rates ? "fast" : "exact"),
          "perf_gate: baseline rates_mode mismatch (exact and fast-mode "
          "numbers must not gate each other)");

  int regressions = 0;
  for (const JsonValue& b : doc.at("cases").items()) {
    const std::string& name = b.at("name").as_string();
    const double base = b.at("events_per_sec").as_number();
    const GateCase* cur = nullptr;
    for (const GateCase& c : cases) {
      if (c.name == name) cur = &c;
    }
    if (cur == nullptr) {
      std::printf("FAIL %-28s missing from this run\n", name.c_str());
      ++regressions;
      continue;
    }
    const double floor = (1.0 - tolerance) * base;
    const bool ok = cur->events_per_sec >= floor;
    std::printf("%s %-32s %12.0f ev/s vs baseline %12.0f (floor %12.0f)\n",
                ok ? "ok  " : "FAIL", name.c_str(), cur->events_per_sec, base,
                floor);
    if (!ok) ++regressions;

    // Adaptive cases also gate the per-rate-evaluation cost: a slower rate
    // kernel can hide behind a stable events/sec when the flagged count
    // drops, and vice versa. Non-adaptive cases skip this (their eval count
    // is fixed at channels/event, so events/sec already covers it).
    const JsonValue* adaptive_field = b.find("adaptive");
    const JsonValue* ns_field = b.find("ns_per_rate_eval");
    const bool base_adaptive =
        adaptive_field != nullptr && adaptive_field->as_bool();
    const double base_ns = ns_field != nullptr ? ns_field->as_number() : 0.0;
    if (base_adaptive && base_ns > 0.0 && cur->ns_per_rate_eval > 0.0) {
      const double ceiling = (1.0 + tolerance) * base_ns;
      const bool ns_ok = cur->ns_per_rate_eval <= ceiling;
      std::printf("%s %-32s %10.1f ns/rate-eval vs baseline %8.1f (ceiling "
                  "%8.1f)\n",
                  ns_ok ? "ok  " : "FAIL", name.c_str(),
                  cur->ns_per_rate_eval, base_ns, ceiling);
      if (!ns_ok) ++regressions;
    }
  }
  return regressions;
}

}  // namespace
}  // namespace semsim

int main(int argc, char** argv) {
  using namespace semsim;
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  std::string out_path;
  std::string baseline_path;
  double tolerance = 0.25;
  bool fast_rates = false;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--out=", 0) == 0) {
      out_path = s.substr(6);
    } else if (s.rfind("--baseline=", 0) == 0) {
      baseline_path = s.substr(11);
    } else if (s == "--fast-rates") {
      fast_rates = true;
    } else if (s.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(s.c_str() + 12, &end);
      if (end == s.c_str() + 12 || *end != '\0' || !(tolerance > 0.0) ||
          tolerance >= 1.0) {
        std::fprintf(stderr, "--tolerance= must be in (0, 1)\n");
        return 2;
      }
    } else if (s == "--help" || s == "-h") {
      std::printf("usage: %s [--out=FILE.json] [--baseline=FILE.json]\n"
                  "          [--tolerance=0.25] [--fast-rates]\n",
                  argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", s.c_str());
      return 2;
    }
  }

  try {
    std::vector<GateCase> cases;
    auto report = [](const GateCase& c) {
      std::printf("# %-32s %12.0f ev/s  %8.1f ns/rate-eval", c.name.c_str(),
                  c.events_per_sec, c.ns_per_rate_eval);
      if (c.flagged_fraction >= 0.0) {
        std::printf("  flagged %.3f", c.flagged_fraction);
      }
      std::printf("\n");
    };
    for (const int stages : {8, 64, 256, 1024}) {
      for (const bool adaptive : {true, false}) {
        cases.push_back(measure_engine_case(stages, adaptive, fast_rates));
        report(cases.back());
      }
    }
    // Warm adaptive cases (4.2 K): the only regime where the fast kernel
    // diverges from the exact one, timed in both variants so the fast
    // path's advantage — and any regression to it — is visible per run.
    for (const int stages : {64, 1024}) {
      for (const bool fast : {false, true}) {
        cases.push_back(measure_engine_case(stages, /*adaptive=*/true, fast,
                                            /*temperature=*/4.2));
        report(cases.back());
      }
    }
    // Ensemble lockstep case: 64 replicas of the 256-stage warm chain in one
    // fused gang; the case itself require()s the fused per-evaluation cost
    // beat the solo engine's, so a broken amortization fails even a --out
    // (baseline-recording) run.
    cases.push_back(measure_ensemble_case(256, 64));
    report(cases.back());

    // ISCAS-scale domain-decomposition cases (iscas_scale.cpp). The 4k
    // pair carries its own in-run require(): partitioned >= 3x solo.
    bench::append_iscas_cases(cases, fast_rates);

    cases.push_back(measure_facade_case(fast_rates));
    std::printf("# %-28s %12.0f ev/s  %8.1f ns/rate-eval\n",
                cases.back().name.c_str(), cases.back().events_per_sec,
                cases.back().ns_per_rate_eval);

    // The adaptive chain cases exist to time the flagged-subset path; if
    // every tested junction also flags, they silently degrade into full
    // refreshes per event and the gate stops covering the partial-flagging
    // code at all. Guard that the coupled circuits really do produce it.
    bool partial_flagging = false;
    for (const GateCase& c : cases) {
      if (c.stages > 0 && c.adaptive && c.flagged_fraction >= 0.0 &&
          c.flagged_fraction < 1.0) {
        partial_flagging = true;
      }
    }
    require(partial_flagging,
            "perf_gate: no adaptive chain case reported flagged_fraction < 1; "
            "the flagged-subset path is not being exercised");

    if (!out_path.empty()) {
      std::ofstream f(out_path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "perf_gate: cannot write %s\n", out_path.c_str());
        return 1;
      }
      f << cases_to_json(cases, tolerance, fast_rates) << '\n';
      std::printf("# wrote %s baseline to %s\n", kSchema, out_path.c_str());
    }
    if (!baseline_path.empty()) {
      const int regressions =
          gate_against(cases, baseline_path, tolerance, fast_rates);
      if (regressions > 0) {
        std::printf("# %d case(s) regressed by more than %.0f%%\n",
                    regressions, tolerance * 100.0);
        return 1;
      }
      std::printf("# all cases within %.0f%% of baseline\n", tolerance * 100.0);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 1;
  }
  return 0;
}
