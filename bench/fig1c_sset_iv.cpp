// Fig. 1c — I-V of the superconducting SET at T = 50 mK with the same
// electrical parameters as Fig. 1b and Delta(0) = 0.2 meV, Tc = 1.2 K.
//
// Expected shape: the suppressed-current region is ENLARGED relative to the
// normal SET by the superconducting gap (quasi-particle transport needs an
// extra 2*Delta per junction: threshold ~ e/C_sigma + 4*Delta/e), with
// sub-gap structure from resonant Cooper-pair (JQP) processes.
#include <cstdio>

#include "analysis/current.h"
#include "analysis/sweep.h"
#include "base/constants.h"
#include "bench_util.h"
#include "core/engine.h"
#include "netlist/circuit.h"

using namespace semsim;

namespace {

std::vector<IvPoint> run_curve(bool superconducting, double vg, double step,
                               std::uint64_t events,
                               const ParallelExecutor& exec,
                               RunCounters& counters) {
  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);
  c.set_source(gate, Waveform::dc(vg));
  if (superconducting) {
    c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
  }

  EngineOptions o;
  o.temperature = 0.05;
  o.qp_table_half_range = 40.0 * 0.2e-3 * kElectronVolt;

  IvSweepConfig cfg;
  cfg.swept = src;
  cfg.mirror = drn;
  cfg.from = -0.02;
  cfg.to = 0.02;
  cfg.step = step / 2.0;
  cfg.probes = {{0, 1.0}, {1, 1.0}};
  cfg.measure = CurrentMeasureConfig{events / 10, events, 8};

  // Larger chunks than fig1b: every engine rebuilds the quasi-particle
  // rate tables, so amortize that over several bias points per unit.
  ParallelSweepConfig par;
  par.base_seed = 42;
  par.points_per_unit = 5;
  return run_iv_sweep(c, o, cfg, exec, par, &counters);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const double step = args.full ? 0.001 : 0.002;
  const std::uint64_t events = args.full ? 60000 : 15000;
  const std::vector<double> gates = {0.00, 0.01, 0.02, 0.03};

  std::printf("== Fig. 1c: SSET I-V at T = 50 mK, Delta(0)=0.2meV, Tc=1.2K ==\n");
  std::printf("# expected qp threshold at Vg=0: e/C + 4 Delta/e = %.1f mV\n",
              1e3 * (kElementaryCharge / 5e-18 +
                     4.0 * 0.2e-3));

  const ParallelExecutor exec(args.threads);
  RunCounters counters;
  std::vector<std::vector<IvPoint>> curves;
  for (const double vg : gates) {
    curves.push_back(run_curve(true, vg, step, events, exec, counters));
  }
  // A normal-state reference curve at the same temperature for the
  // gap-enlargement comparison.
  const std::vector<IvPoint> normal =
      run_curve(false, 0.0, step, events, exec, counters);
  bench::report_counters("fig1c sweeps", counters);

  TableWriter table({"vds_V", "i_vg0_A", "i_vg10mV_A", "i_vg20mV_A",
                     "i_vg30mV_A", "i_normal_vg0_A"});
  table.add_comment("Fig. 1c reproduction: SSET I-V, T = 50 mK");
  table.add_comment("same SET as Fig. 1b + Delta(0K)=0.2meV, Tc=1.2K");
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({2.0 * curves[0][i].bias, curves[0][i].current,
                   curves[1][i].current, curves[2][i].current,
                   curves[3][i].current, normal[i].current});
  }
  bench::emit(args, "fig1c_sset_iv", table);

  // Gap-enlargement check with a fine sweep across the threshold region:
  // the suppressed region extends by 4*Delta/e = 0.8 mV for this material.
  auto fine_threshold = [&](bool sc) {
    Circuit c;
    const NodeId src = c.add_external("src");
    const NodeId drn = c.add_external("drn");
    const NodeId gate = c.add_external("gate");
    const NodeId island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    if (sc) c.set_superconducting({0.2e-3 * kElectronVolt, 1.2});
    EngineOptions o;
    o.temperature = 0.05;
    o.seed = 9;
    o.qp_table_half_range = 40.0 * 0.2e-3 * kElectronVolt;
    Engine engine(c, o);
    for (double v_half = 0.0150; v_half <= 0.0175; v_half += 0.0001) {
      engine.set_dc_source(src, v_half);
      engine.set_dc_source(drn, -v_half);
      engine.rebase_time();
      const CurrentEstimate est = measure_mean_current(
          engine, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{500, 4000, 4});
      if (std::abs(est.mean) > 1e-10) return 2.0 * v_half;
    }
    return 0.036;
  };
  const double th_normal = fine_threshold(false);
  const double th_sset = fine_threshold(true);
  std::printf("check: threshold normal = %.2f mV, SSET = %.2f mV, "
              "shift = %.2f mV (analytic 4*Delta/e = %.2f mV)\n",
              1e3 * th_normal, 1e3 * th_sset, 1e3 * (th_sset - th_normal),
              4.0 * 0.2);
  return 0;
}
