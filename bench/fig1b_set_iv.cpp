// Fig. 1b — I-V characteristics of the paper's SET at T = 5 K for gate
// voltages 0 .. 30 mV: R1 = R2 = 1 MOhm, C1 = C2 = 1 aF, Cg = 3 aF,
// symmetric bias sweep of Vds.
//
// Expected shape (all reproduced): Coulomb-blockade suppression around
// Vds = 0 extending to |Vds| ~ e/C_sigma = 32 mV at Vg = 0, shrinking as the
// gate approaches the degeneracy point, with the overall staircase-free
// quasi-linear rise above threshold.
#include <cmath>
#include <cstdio>

#include "analysis/current.h"
#include "analysis/sweep.h"
#include "base/constants.h"
#include "bench_util.h"
#include "core/engine.h"
#include "master/master_equation.h"
#include "netlist/circuit.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const double step = args.full ? 0.001 : 0.002;
  const std::uint64_t events = args.full ? 100000 : 20000;
  const std::vector<double> gates = {0.00, 0.01, 0.02, 0.03};

  std::printf("== Fig. 1b: SET I-V at T = 5 K (paper parameters) ==\n");
  std::printf("# blockade threshold (analytic): e/C_sigma = %.1f mV at Vg = 0\n",
              1e3 * kElementaryCharge / 5e-18);

  // One current column per gate voltage. Each curve runs through the
  // deterministic parallel sweep: the columns are identical for every
  // --threads value (only the wall time changes).
  const ParallelExecutor exec(args.threads);
  RunCounters counters;
  std::vector<std::vector<IvPoint>> curves;
  std::size_t curve_index = 0;
  for (const double vg : gates) {
    Circuit c;
    const NodeId src = c.add_external("src");
    const NodeId drn = c.add_external("drn");
    const NodeId gate = c.add_external("gate");
    const NodeId island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(gate, Waveform::dc(vg));

    EngineOptions o;
    o.temperature = 5.0;

    IvSweepConfig cfg;
    cfg.swept = src;
    cfg.mirror = drn;
    cfg.from = -0.02;  // Vds = 2 * v_half spans -40 .. +40 mV
    cfg.to = 0.02;
    cfg.step = step / 2.0;
    cfg.probes = {{0, 1.0}, {1, 1.0}};
    cfg.measure = CurrentMeasureConfig{events / 10, events, 8};

    ParallelSweepConfig par;
    par.base_seed = args.seed > 0 ? args.seed : 42;
    par.points_per_unit = 4;
    // --checkpoint=FILE: one checkpoint file per gate curve (sweep chunks
    // are the units inside each file).
    CheckpointConfig ckpt;
    if (!args.checkpoint.empty()) {
      ckpt.path = args.checkpoint + "." + std::to_string(curve_index);
      ckpt.fingerprint = fnv1a64("fig1b curve " + std::to_string(curve_index));
    }
    curves.push_back(run_iv_sweep(c, o, cfg, exec, par, &counters, ckpt));
    ++curve_index;
  }
  bench::report_counters("fig1b sweeps", counters);

  TableWriter table({"vds_V", "i_vg0_A", "i_vg10mV_A", "i_vg20mV_A", "i_vg30mV_A"});
  table.add_comment("Fig. 1b reproduction: SET I-V, T = 5 K");
  table.add_comment("R1=R2=1MOhm C1=C2=1aF Cg=3aF, symmetric bias");
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    table.add_row({2.0 * curves[0][i].bias, curves[0][i].current,
                   curves[1][i].current, curves[2][i].current,
                   curves[3][i].current});
  }
  bench::emit(args, "fig1b_set_iv", table);

  // Quick shape assertions printed for EXPERIMENTS.md.
  const auto& c0 = curves[0];
  const std::size_t mid = c0.size() / 2;
  const std::size_t hi = c0.size() - 1;
  std::printf("check: |I(0)| = %.3e A << |I(+40mV)| = %.3e A  [blockade]\n",
              std::abs(c0[mid].current), std::abs(c0[hi].current));
  std::printf("check: I(-40mV) = %.3e ~ -I(+40mV) = %.3e  [antisymmetry]\n",
              c0[0].current, -c0[hi].current);

  // Cross-validation against the (noise-free) master-equation solver at a
  // few bias points — the "second method" of the paper's Sec. I.
  std::printf("Monte-Carlo vs master equation (Vg = 0):\n");
  for (const double v_half : {0.01, 0.015, 0.02}) {
    Circuit c;
    const NodeId src = c.add_external("src");
    const NodeId drn = c.add_external("drn");
    const NodeId gate = c.add_external("gate");
    const NodeId island = c.add_island("island");
    c.add_junction(src, island, 1e6, 1e-18);
    c.add_junction(island, drn, 1e6, 1e-18);
    c.add_capacitor(gate, island, 3e-18);
    c.set_source(src, Waveform::dc(v_half));
    c.set_source(drn, Waveform::dc(-v_half));
    EngineOptions o;
    o.temperature = 5.0;
    MasterEquationSolver me(c, o);
    // Interpolate the Monte-Carlo curve at this bias point.
    double i_mc = 0.0;
    for (const IvPoint& p : curves[0]) {
      if (std::abs(2.0 * p.bias - 2.0 * v_half) < 1e-6) i_mc = p.current;
    }
    std::printf("  Vds=%.0f mV: MC %.4e A vs ME %.4e A (ratio %.3f)\n",
                2e3 * v_half, i_mc, me.junction_current(0),
                i_mc / me.junction_current(0));
  }
  return 0;
}
