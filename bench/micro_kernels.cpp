// Micro-benchmarks of the kernels the Fig. 6 cost model is built from:
// tunnel-rate evaluations, free-energy updates, event sampling, and whole
// Monte-Carlo steps for both solvers on parametric chain circuits.
#include <benchmark/benchmark.h>

#include "base/constants.h"
#include "bench_util.h"
#include "base/fenwick.h"
#include "base/random.h"
#include "core/engine.h"
#include "linalg/cholesky.h"
#include "netlist/circuit.h"
#include "physics/cooper_pair.h"
#include "physics/cotunneling.h"
#include "physics/qp_rate.h"
#include "physics/rates.h"
#include "spice/set_model.h"

namespace semsim {
namespace {

void BM_OrthodoxRate(benchmark::State& state) {
  double w = -1e-21;
  for (auto _ : state) {
    benchmark::DoNotOptimize(orthodox_rate(w, 1e6, 1.0));
    w = -w;
  }
}
BENCHMARK(BM_OrthodoxRate);

// --- batch rate kernels (physics/rates.h) ------------------------------
// Per-element cost of the hot-path kernel three ways: a scalar call loop
// (what the engine did before the SoA batch path), the exact batch kernel,
// and the opt-in fast polynomial kernel. Thermal inputs spanning the
// interesting |delta_w/kT| range keep every lane on the expm1-bound branch;
// items_processed is elements, so the reported items/sec compares directly.

constexpr double kBatchResistance = 1e6;
constexpr double kBatchTemperature = 1.0;

void fill_batch_inputs(std::size_t n, std::vector<double>& dw,
                       std::vector<double>& g) {
  dw.resize(n);
  g.resize(n);
  Xoshiro256 rng(11);
  const double kt = kBoltzmann * kBatchTemperature;
  for (std::size_t i = 0; i < n; ++i) {
    // |x| in [1e-3, 50] kT, both signs: the chunked "simple" fast path.
    dw[i] = (2.0 * rng.uniform01() - 1.0) * 50.0 * kt;
    g[i] = 1.0 / (kElementaryCharge * kElementaryCharge * kBatchResistance);
  }
}

void BM_TunnelRatesScalarLoop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> dw, g, out(n);
  fill_batch_inputs(n, dw, g);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = orthodox_rate(dw[i], kBatchResistance, kBatchTemperature);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TunnelRatesScalarLoop)->Arg(16)->Arg(256)->Arg(4096);

void BM_TunnelRatesBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> dw, g, out(n);
  fill_batch_inputs(n, dw, g);
  const double kt = kBoltzmann * kBatchTemperature;
  for (auto _ : state) {
    tunnel_rates_batch(dw.data(), g.data(), kt, out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TunnelRatesBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_TunnelRatesBatchFast(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> dw, g, out(n);
  fill_batch_inputs(n, dw, g);
  const double kt = kBoltzmann * kBatchTemperature;
  for (auto _ : state) {
    tunnel_rates_batch_fast(dw.data(), g.data(), kt, out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TunnelRatesBatchFast)->Arg(16)->Arg(256)->Arg(4096);

void BM_TunnelRatesBatchT0(benchmark::State& state) {
  // T = 0 limit: the branch the chain perf-gate cases exercise. Pure
  // max + multiply, should autovectorize.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> dw, g, out(n);
  fill_batch_inputs(n, dw, g);
  for (auto _ : state) {
    tunnel_rates_batch(dw.data(), g.data(), 0.0, out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TunnelRatesBatchT0)->Arg(16)->Arg(256)->Arg(4096);

void BM_QpRateDirectIntegral(benchmark::State& state) {
  const double d = 0.21e-3 * kElectronVolt;
  QuasiparticleRate qp({2.1e5, d, d, 0.52});
  double w = -3.0 * d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp.rate(w));
  }
}
BENCHMARK(BM_QpRateDirectIntegral);

void BM_QpRateCachedLookup(benchmark::State& state) {
  const double d = 0.21e-3 * kElectronVolt;
  QuasiparticleRate qp({2.1e5, d, d, 0.52});
  qp.build_table(-6.0 * d, 6.0 * d);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const double w = (2.0 * rng.uniform01() - 1.0) * 5.0 * d;
    benchmark::DoNotOptimize(qp.rate_cached(w));
  }
}
BENCHMARK(BM_QpRateCachedLookup);

void BM_CooperPairRate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cooper_pair_rate(1e-23, 5e-25, 6e-25));
  }
}
BENCHMARK(BM_CooperPairRate);

void BM_CotunnelingRate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cotunneling_rate(-1e-22, 2e-21, 2e-21, 1e6, 1e6, 1.0));
  }
}
BENCHMARK(BM_CotunnelingRate);

// Batched SoA cotunneling kernel (the engine's secondary-refresh path) over
// the enumerated paths of a multi-island chain; Arg is 0 = exact libm
// kernel, 1 = the --fast-rates polynomial. items/sec is paths/sec.
void BM_CotunnelingRatesBatch(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  const Circuit c = bench::chain_circuit(64);
  const ElectrostaticModel em(c);
  EngineOptions o;
  o.temperature = 1.0;
  o.cotunneling = true;
  const RateCalculator calc(c, em, o);
  const auto& paths = calc.cotunneling_paths();
  std::vector<std::uint32_t> cot_slot;
  for (const CotunnelingPath& p : paths) {
    cot_slot.push_back(static_cast<std::uint32_t>(p.from));
    cot_slot.push_back(static_cast<std::uint32_t>(p.via));
    cot_slot.push_back(static_cast<std::uint32_t>(p.to));
  }
  std::vector<double> v(c.node_count());
  Xoshiro256 rng(5);
  for (double& x : v) x = (rng.uniform01() - 0.5) * 0.01;
  std::vector<double> out(paths.size());
  for (auto _ : state) {
    calc.cotunneling_rates_batch(v.data(), cot_slot.data(), fast, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(paths.size()));
}
BENCHMARK(BM_CotunnelingRatesBatch)->Arg(0)->Arg(1);

void BM_SetCompactModel(benchmark::State& state) {
  SetModelParams m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set_drain_current(m, 0.02, 0.0, 0.015, 0.0));
  }
}
BENCHMARK(BM_SetCompactModel);

void BM_FenwickSetAndSample(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  FenwickTree t(n);
  Xoshiro256 rng(7);
  for (std::size_t i = 0; i < n; ++i) t.set(i, rng.uniform01() * 1e9);
  for (auto _ : state) {
    t.set(rng.uniform_below(n), rng.uniform01() * 1e9);
    benchmark::DoNotOptimize(t.sample(rng.uniform01() * t.total()));
  }
}
BENCHMARK(BM_FenwickSetAndSample)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineStepAdaptive(benchmark::State& state) {
  const Circuit c = bench::chain_circuit(static_cast<int>(state.range(0)));
  EngineOptions o;
  o.temperature = 0.0;
  o.adaptive.enabled = true;
  Engine e(c, o);
  for (auto _ : state) {
    if (!e.step()) state.SkipWithError("engine stuck");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(e.event_count()));
}
BENCHMARK(BM_EngineStepAdaptive)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineStepNonAdaptive(benchmark::State& state) {
  const Circuit c = bench::chain_circuit(static_cast<int>(state.range(0)));
  EngineOptions o;
  o.temperature = 0.0;
  o.adaptive.enabled = false;
  Engine e(c, o);
  for (auto _ : state) {
    if (!e.step()) state.SkipWithError("engine stuck");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(e.event_count()));
}
BENCHMARK(BM_EngineStepNonAdaptive)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_CholeskyInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = 0.1 * rng.uniform01();
      a(i, j) = -v;
      a(j, i) = -v;
    }
    a(i, i) = 2.0 + static_cast<double>(n) * 0.1;
  }
  for (auto _ : state) {
    CholeskyDecomposition chol(a);
    benchmark::DoNotOptimize(chol.inverse());
  }
}
BENCHMARK(BM_CholeskyInverse)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semsim
