// Fig. 6 — simulation-time comparison over the 15 logic benchmarks:
// non-adaptive Monte-Carlo vs SEMSIM (adaptive) vs the SPICE-style
// analytical baseline.
//
// As in the paper, each simulator runs a fixed window of switching activity
// and the cost is extrapolated to 10 us of simulated time ("The running
// times for five of the larger benchmarks were extrapolated from shorter
// running times, and were adjusted for a circuit simulation time of 10 us").
// The paper's headline: the adaptive method is fastest where it matters,
// with >40x over non-adaptive at the largest benchmark, and adaptive times
// comparable to SPICE.
//
// Default mode runs all 15 benchmarks with reduced windows; --full enlarges
// the measured windows. SPICE runs are skipped above 2500 junctions unless
// --full (the paper likewise reports SPICE failures on several benchmarks).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "logic/benchmarks.h"
#include "logic/elaborate.h"
#include "logic/testbench.h"
#include "obs/checkpoint.h"
#include "spice/map_logic.h"

using namespace semsim;

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

namespace {

// Everything one benchmark contributes: the table row plus the lines to
// print. Units run concurrently under --threads, so nothing prints from
// inside a unit; rows come back and are emitted in benchmark order.
struct BenchRow {
  std::vector<double> row;
  std::string log;
  RunCounters counters;
};

std::vector<std::uint8_t> encode_bench_row(const BenchRow& r) {
  BinaryWriter w;
  w.vec_f64(r.row);
  w.str(r.log);
  w.u64(r.counters.units);
  w.u64(r.counters.events);
  w.u64(r.counters.rate_evaluations);
  w.u64(r.counters.flags_raised);
  w.u64(r.counters.full_refreshes);
  w.f64(r.counters.wall_seconds);
  return w.take();
}

BenchRow decode_bench_row(const std::vector<std::uint8_t>& bytes) {
  BinaryReader rd(bytes);
  BenchRow r;
  r.row = rd.vec_f64();
  r.log = rd.str();
  r.counters.units = rd.u64();
  r.counters.events = rd.u64();
  r.counters.rate_evaluations = rd.u64();
  r.counters.flags_raised = rd.u64();
  r.counters.full_refreshes = rd.u64();
  r.counters.wall_seconds = rd.f64();
  rd.require_done();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const double target_span = 10e-6;  // the paper's normalization

  std::printf("== Fig. 6: simulation-time comparison (extrapolated to 10 us) ==\n");
  TableWriter table({"junctions", "paper_junctions", "islands", "setup_s",
                     "nonadaptive_s", "semsim_adaptive_s", "spice_s",
                     "speedup_adaptive", "evals_per_event_nonadaptive",
                     "evals_per_event_adaptive"});
  table.add_comment("Fig. 6 reproduction; rows in paper order (see names below)");

  // Work units are whole benchmarks: the measured windows stay serial
  // inside a unit so their wall-clock ratios remain meaningful. The
  // adaptive-vs-non-adaptive comparison additionally rests on the
  // machine-independent evals/event columns.
  const ParallelExecutor exec(args.threads);
  if (exec.threads() > 1) {
    std::printf("# note: %u concurrent benchmarks share memory bandwidth; "
                "absolute wall times are inflated, ratios stay indicative\n",
                exec.threads());
  }
  const std::vector<LogicBenchmark> benches = make_all_benchmarks();

  // --checkpoint=FILE: each finished benchmark's row is recorded, so an
  // interrupted bench run resumes where it stopped instead of re-measuring
  // (restored rows keep their originally measured wall times).
  std::unique_ptr<RunCheckpoint> cp;
  if (!args.checkpoint.empty()) {
    BinaryWriter fp;
    fp.str("fig6");
    fp.u8(args.full ? 1 : 0);
    fp.u64(benches.size());
    cp = std::make_unique<RunCheckpoint>(
        args.checkpoint, fnv1a64(fp.bytes().data(), fp.bytes().size()),
        benches.size());
    if (cp->completed() > 0) {
      std::printf("# checkpoint %s: %zu/%zu benchmarks already done\n",
                  args.checkpoint.c_str(), cp->completed(), benches.size());
    }
  }

  const std::vector<BenchRow> rows =
      exec.map<BenchRow>(benches.size(), [&](std::size_t i) {
        if (cp && cp->has(i)) return decode_bench_row(cp->payload(i));
        const LogicBenchmark& b = benches[i];
        const std::size_t j = b.netlist.junction_count();
        BenchRow out;
        char buf[256];

        const auto t_setup = Clock::now();
        ElaboratedCircuit elab = elaborate(b.netlist, SetLogicParams{});
        auto model = std::make_shared<const ElectrostaticModel>(elab.circuit());
        const double setup_s = seconds_since(t_setup);
        const std::size_t islands = model->island_count();

        const std::uint64_t base_events = args.full ? 20000 : 6000;
        const std::uint64_t events_small =
            j > 3000 ? base_events / 3 : base_events;

        PerfRunConfig ca;
        ca.events = events_small;
        ca.engine.adaptive.enabled = true;
        const PerfRunResult ra = run_performance_window(b, elab, model, ca);

        PerfRunConfig cn;
        cn.events = j > 3000 ? events_small / 2 : events_small;
        cn.engine.adaptive.enabled = false;
        const PerfRunResult rn = run_performance_window(b, elab, model, cn);

        const double t_adaptive =
            ra.wall_seconds / ra.simulated_seconds * target_span;
        const double t_nonadaptive =
            rn.wall_seconds / rn.simulated_seconds * target_span;

        double t_spice = std::nan("");
        if (j <= 2500 || args.full) {
          try {
            TransientOptions to;
            const double span = args.full ? 200e-9 : 60e-9;
            const SpicePerfResult rs =
                spice_performance_window(b, SetLogicParams{}, to, span);
            t_spice = rs.wall_seconds / rs.simulated_seconds * target_span;
          } catch (const NumericError& e) {
            std::snprintf(buf, sizeof(buf),
                          "  SPICE: non-convergence (%s) — reported like the "
                          "paper's SPICE failures\n",
                          e.what());
            out.log += buf;
          }
        } else {
          out.log += "  SPICE: skipped at this size (enable with --full)\n";
        }

        const double evals_n = static_cast<double>(rn.stats.rate_evaluations) /
                               static_cast<double>(rn.stats.events);
        const double evals_a = static_cast<double>(ra.stats.rate_evaluations) /
                               static_cast<double>(ra.stats.events);
        std::snprintf(buf, sizeof(buf),
                      "  non-adaptive %.3g s | SEMSIM %.3g s | SPICE %.3g s "
                      "| speedup %.1fx | evals/event %.0f -> %.1f\n",
                      t_nonadaptive, t_adaptive, t_spice,
                      t_nonadaptive / t_adaptive, evals_n, evals_a);
        out.log += buf;

        out.counters.threads = exec.threads();
        out.counters.wall_seconds = ra.wall_seconds + rn.wall_seconds;
        out.counters.absorb(ra.stats);
        out.counters.absorb(rn.stats);
        out.row = {static_cast<double>(j),
                   static_cast<double>(b.paper_junctions),
                   static_cast<double>(islands), setup_s, t_nonadaptive,
                   t_adaptive, t_spice, t_nonadaptive / t_adaptive, evals_n,
                   evals_a};
        if (cp) cp->record(i, encode_bench_row(out));
        return out;
      });

  RunCounters totals;
  totals.threads = exec.threads();
  for (std::size_t i = 0; i < benches.size(); ++i) {
    std::printf("[%s] %zu junctions (paper: %zu)\n", benches[i].name.c_str(),
                benches[i].netlist.junction_count(),
                benches[i].paper_junctions);
    std::fputs(rows[i].log.c_str(), stdout);
    table.add_row(TableWriter::cells(rows[i].row));
    totals.units += rows[i].counters.units;
    totals.events += rows[i].counters.events;
    totals.rate_evaluations += rows[i].counters.rate_evaluations;
    totals.flags_raised += rows[i].counters.flags_raised;
    totals.full_refreshes += rows[i].counters.full_refreshes;
    totals.wall_seconds += rows[i].counters.wall_seconds;
  }
  bench::report_counters("fig6 windows (summed per-window wall)", totals);

  bench::emit(args, "fig6_performance", table);
  std::printf("paper expectation: speedup grows with junction count, "
              ">40x at the largest benchmark; adaptive comparable to SPICE.\n");
  return 0;
}
