// Shared plumbing for the figure-reproduction benches: flag parsing and
// dual output (stdout + bench_out/*.tsv).
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "io/table_writer.h"

namespace semsim::bench {

struct BenchArgs {
  bool full = false;        ///< paper-fidelity event counts / grids
  std::string out_dir = "bench_out";

  static BenchArgs parse(int argc, char** argv) {
    // Benches run for minutes; make progress visible through pipes.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s == "--full") {
        a.full = true;
      } else if (s.rfind("--out=", 0) == 0) {
        a.out_dir = s.substr(6);
      } else if (s == "--help" || s == "-h") {
        std::printf("usage: %s [--full] [--out=DIR]\n", argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", s.c_str());
        std::exit(2);
      }
    }
    return a;
  }
};

/// Prints the table to stdout and writes it under out_dir/name.tsv.
inline void emit(const BenchArgs& args, const std::string& name,
                 const TableWriter& table) {
  std::filesystem::create_directories(args.out_dir);
  table.write(std::cout);
  table.write_file(args.out_dir + "/" + name + ".tsv");
  std::printf("# -> %s/%s.tsv\n\n", args.out_dir.c_str(), name.c_str());
}

}  // namespace semsim::bench
