// Shared plumbing for the figure-reproduction benches: flag parsing and
// dual output (stdout + bench_out/*.tsv).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/options.h"
#include "io/table_writer.h"
#include "netlist/circuit.h"

namespace semsim::bench {

/// A chain of SET stages (the Fig. 4 / Fig. 6 scaling scenario): n stages =
/// 2n junctions and n islands, biased at +-10 mV. Shared by the step
/// micro-benchmarks and the perf gate so both time the same circuit.
///
/// With coupling_f = 0 (the default) the stages are electrically isolated:
/// an event on stage s perturbs only its own two junctions, so the adaptive
/// solver flags every junction it tests and flagged_fraction is exactly 1 —
/// a degenerate workload for the flagged-subset machinery. coupling_f > 0
/// adds a capacitor of that value between neighbouring islands, making
/// events nudge the neighbours' potentials weakly: the neighbours' junctions
/// get TESTED by the staleness criterion but (for small enough coupling)
/// not FLAGGED, which is the partial-flagging regime the paper's algorithm
/// is built for. 0.5e-18 F against the 20e-18 F ground caps keeps the
/// accumulated testing factor about half an order of magnitude below the
/// flag threshold at the default alpha.
inline Circuit chain_circuit(int stages, double coupling_f = 0.0) {
  Circuit c;
  const NodeId vp = c.add_external("vp");
  const NodeId vn = c.add_external("vn");
  c.set_source(vp, Waveform::dc(0.01));
  c.set_source(vn, Waveform::dc(-0.01));
  NodeId prev = Circuit::kGroundNode;
  for (int s = 0; s < stages; ++s) {
    const NodeId i = c.add_island();
    c.add_junction(vp, i, 1e6, 1e-18);
    c.add_junction(i, vn, 1e6, 1e-18);
    c.add_capacitor(i, Circuit::kGroundNode, 20e-18);
    if (coupling_f > 0.0 && s > 0) c.add_capacitor(prev, i, coupling_f);
    prev = i;
  }
  return c;
}

struct BenchArgs {
  bool full = false;        ///< paper-fidelity event counts / grids
  std::string out_dir = "bench_out";
  /// Worker threads for the parallel sweep / multi-seed paths (0 = all
  /// cores). Results are bitwise identical for every value; only wall time
  /// changes. Timing-sensitive benches (fig6) ignore this for the measured
  /// windows and parallelize only across independent runs.
  unsigned threads = 1;
  /// Overrides for a bench's built-in base seed / repeat count; 0 keeps the
  /// bench default (every bench documents its own, e.g. fig7 uses 9 seeds).
  std::uint64_t seed = 0;
  std::uint64_t repeats = 0;
  /// Non-empty enables per-unit crash-safe checkpointing: finished work
  /// units are recorded to this file and restored on rerun (obs/checkpoint).
  std::string checkpoint;

  /// Strict `--flag=` value parse: anything but a plain non-negative
  /// decimal integer is fatal (exit 2), matching the driver CLI.
  static std::uint64_t parse_u64_flag(const std::string& s,
                                      std::size_t prefix_len) {
    char* end = nullptr;
    const char* text = s.c_str() + prefix_len;
    const std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' ||
        s.find('-', prefix_len) != std::string::npos) {
      std::fprintf(stderr, "%.*s not a non-negative integer: %s\n",
                   static_cast<int>(prefix_len), s.c_str(), text);
      std::exit(2);
    }
    return v;
  }

  static BenchArgs parse(int argc, char** argv) {
    // Benches run for minutes; make progress visible through pipes.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s == "--full") {
        a.full = true;
      } else if (s.rfind("--out=", 0) == 0) {
        a.out_dir = s.substr(6);
      } else if (s.rfind("--threads=", 0) == 0) {
        a.threads = static_cast<unsigned>(parse_u64_flag(s, 10));
      } else if (s.rfind("--seed=", 0) == 0) {
        a.seed = parse_u64_flag(s, 7);
      } else if (s.rfind("--repeats=", 0) == 0) {
        a.repeats = parse_u64_flag(s, 10);
        if (a.repeats == 0) {
          std::fprintf(stderr, "--repeats= must be >= 1\n");
          std::exit(2);
        }
      } else if (s.rfind("--checkpoint=", 0) == 0) {
        a.checkpoint = s.substr(13);
      } else if (s == "--help" || s == "-h") {
        std::printf(
            "usage: %s [--full] [--out=DIR] [--threads=N] [--seed=N]\n"
            "          [--repeats=N] [--checkpoint=FILE]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", s.c_str());
        std::exit(2);
      }
    }
    return a;
  }
};

/// One-line run-counter report every bench prints after a parallel region.
inline void report_counters(const char* what, const RunCounters& c) {
  std::printf(
      "# %s: %u thread(s), %llu unit(s), %llu events, %llu rate evals, "
      "%llu flags, %llu refreshes, %.3f s wall\n",
      what, c.threads, static_cast<unsigned long long>(c.units),
      static_cast<unsigned long long>(c.events),
      static_cast<unsigned long long>(c.rate_evaluations),
      static_cast<unsigned long long>(c.flags_raised),
      static_cast<unsigned long long>(c.full_refreshes), c.wall_seconds);
}

/// Prints the table to stdout and writes it under out_dir/name.tsv.
inline void emit(const BenchArgs& args, const std::string& name,
                 const TableWriter& table) {
  std::filesystem::create_directories(args.out_dir);
  table.write(std::cout);
  table.write_file(args.out_dir + "/" + name + ".tsv");
  std::printf("# -> %s/%s.tsv\n\n", args.out_dir.c_str(), name.c_str());
}

}  // namespace semsim::bench
