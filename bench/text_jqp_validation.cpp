// Sec. IV-A (text) — JQP quantitative validation.
//
// The paper compares JQP peaks against the Nakamura et al. experiment and
// reports "quantitative agreement". Offline, the oracle is the theory the
// JQP cycle is built from: the bench sweeps bias across the Cooper-pair
// resonance, locates the current peak, and compares (a) its position against
// the analytic dW_cp = 0 bias and (b) its height against the golden-rule
// cycle estimate — the peak current of a (1 Cooper pair + 2 quasi-particles)
// cycle is bounded by 2e times the slower of the resonant CP rate and the
// quasi-particle escape rate.
#include <cmath>
#include <cstdio>

#include "analysis/current.h"
#include "base/constants.h"
#include "bench_util.h"
#include "core/engine.h"
#include "netlist/circuit.h"
#include "netlist/electrostatics.h"
#include "physics/bcs.h"
#include "physics/cooper_pair.h"

using namespace semsim;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::uint64_t events = args.full ? 80000 : 20000;

  // Fig. 5 device at a fixed gate voltage that puts the JQP resonance
  // inside the sweep window.
  const double temp = 0.52, tc = 1.2, rj = 2.1e5;
  const double cj = 110e-18, cg = 14e-18, qb = 0.65, vg = 0.008;
  const double delta0 =
      0.21e-3 * kElectronVolt / std::tanh(1.74 * std::sqrt(tc / temp - 1.0));
  const double gap = bcs_gap(delta0, tc, temp);

  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, rj, cj);
  c.add_junction(island, drn, rj, cj);
  c.add_capacitor(gate, island, cg);
  c.set_background_charge(island, qb);
  c.set_superconducting({delta0, tc});
  c.set_source(gate, Waveform::dc(vg));

  // Analytic resonance bias (dW_cp = 0 through the source junction, n = 0).
  const ElectrostaticModel m(c);
  const double e = kElementaryCharge;
  const double kappa = m.kappa_node(island, island);
  const double u = 0.5 * e * e * kappa;
  const double s_src = m.source_gain()(0, 0);
  const double s_gate = m.source_gain()(0, 2);
  const double v_resonance =
      (2.0 * u / e - kappa * e * qb - s_gate * vg) / (s_src - 1.0);
  const double ej = josephson_energy(rj, gap, temp);
  const double eta = default_cp_broadening(rj, gap);
  const double cp_rate_res = cooper_pair_rate(0.0, ej, eta);

  std::printf("== JQP validation: peak position and magnitude ==\n");
  std::printf("# E_J = %.3f ueV, eta = %.3f ueV, resonant CP rate = %.3e /s\n",
              1e6 * ej / kElectronVolt, 1e6 * eta / kElectronVolt, cp_rate_res);
  std::printf("# analytic resonance at V_bias = %.4f mV\n", 1e3 * v_resonance);

  EngineOptions o;
  o.temperature = temp;
  o.seed = 21;
  o.qp_table_half_range = 20.0 * gap;
  Engine engine(c, o);

  TableWriter table({"vbias_V", "i_A"});
  table.add_comment("bias sweep across the JQP resonance, Vg = 8 mV");
  double peak_i = 0.0, peak_v = 0.0;
  for (double vb = std::max(0.1e-3, v_resonance - 0.4e-3);
       vb <= v_resonance + 0.4e-3; vb += args.full ? 0.02e-3 : 0.04e-3) {
    engine.set_dc_source(src, vb);
    engine.rebase_time();
    const CurrentEstimate est = measure_mean_current(
        engine, {{0, 1.0}, {1, 1.0}}, CurrentMeasureConfig{events / 10, events, 6});
    table.add_row({vb, est.mean});
    if (std::abs(est.mean) > std::abs(peak_i)) {
      peak_i = est.mean;
      peak_v = vb;
    }
  }
  bench::emit(args, "jqp_validation", table);

  std::printf("measured peak: I = %.3e A at V_bias = %.4f mV\n", peak_i,
              1e3 * peak_v);
  std::printf("position check: measured %.4f mV vs analytic %.4f mV "
              "(diff %.1f%% of resonance bias)\n",
              1e3 * peak_v, 1e3 * v_resonance,
              100.0 * std::abs(peak_v - v_resonance) / v_resonance);
  // The cycle current is 2e / (1/G_cp + 1/G_qp1 + 1/G_qp2); at these
  // sub-millivolt biases the quasi-particle escapes are thermally assisted
  // (the Manninen experiment's point), so the peak sits below the pure
  // Cooper-pair ceiling by the qp bottleneck factor.
  const double cycles = peak_i / (2.0 * e);
  std::printf("magnitude check: peak %.3e A = %.3e cycles/s; CP-resonance "
              "ceiling 2e*Gamma_cp(0) = %.3e A; implied qp bottleneck "
              "%.3e /s\n",
              peak_i, cycles, 2.0 * e * cp_rate_res,
              1.0 / std::max(1e-30, 1.0 / cycles - 1.0 / cp_rate_res));
  return 0;
}
