// Extension — full counting statistics of SET transport.
//
// Not a paper figure: this exercises a capability unique to the Monte-Carlo
// method among the paper's three approaches (SPICE and the master equation
// only produce mean currents). The Fano factor of the transmitted charge is
// swept along the gate axis at fixed bias: at the degeneracy point the
// symmetric two-state cycle suppresses shot noise to F = 1/2; toward the
// blockade edges one rate dominates and F -> 1 (Poissonian); deep in
// blockade with cotunneling enabled the second-order process is Poissonian
// with F ~ 1 as well.
#include <cmath>
#include <cstdio>

#include "analysis/noise.h"
#include "base/constants.h"
#include "bench_util.h"
#include "core/engine.h"
#include "netlist/circuit.h"

using namespace semsim;

namespace {

Circuit make_set(double v_half, double vg) {
  Circuit c;
  const NodeId src = c.add_external("src");
  const NodeId drn = c.add_external("drn");
  const NodeId gate = c.add_external("gate");
  const NodeId island = c.add_island("island");
  c.add_junction(src, island, 1e6, 1e-18);
  c.add_junction(island, drn, 1e6, 1e-18);
  c.add_capacitor(gate, island, 3e-18);
  c.set_source(src, Waveform::dc(v_half));
  c.set_source(drn, Waveform::dc(-v_half));
  c.set_source(gate, Waveform::dc(vg));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const unsigned windows = args.full ? 1500 : 400;
  const double vg_deg = kElementaryCharge / (2.0 * 5e-18) / 0.6;  // 26.7 mV

  std::printf("== Extension: shot-noise (Fano factor) along the gate axis ==\n");
  std::printf("# SET at T = 0, Vds = 10 mV; degeneracy gate = %.2f mV\n",
              1e3 * vg_deg);

  TableWriter table({"vgate_V", "fano", "current_A"});
  table.add_comment("two-state window around the degeneracy point; F = 1/2 at");
  table.add_comment("the symmetric point, -> 1 toward the conduction edges");
  for (double frac = 0.70; frac <= 1.301; frac += args.full ? 0.025 : 0.05) {
    const double vg = frac * vg_deg;
    Circuit c = make_set(0.005, vg);
    EngineOptions o;
    o.temperature = 0.0;
    o.seed = 5;
    Engine e(c, o);
    if (e.total_rate() <= 0.0) continue;  // outside the conducting window
    FanoConfig cfg;
    cfg.junction = 0;
    cfg.window_time = 120.0 / e.total_rate();
    cfg.windows = windows;
    const FanoEstimate est = measure_fano(e, cfg);
    if (est.windows < 2 || std::abs(est.mean_per_window) < 1.0) continue;
    table.add_row({vg, est.fano, est.current});
    std::printf("Vg = %6.2f mV: F = %.3f, I = %.3e A\n", 1e3 * vg, est.fano,
                est.current);
  }
  bench::emit(args, "ext_counting_statistics", table);

  // Cotunneling reference point: Poissonian second-order transport.
  Circuit c = make_set(0.005, 0.0);
  EngineOptions o;
  o.temperature = 0.0;
  o.cotunneling = true;
  o.seed = 5;
  Engine e(c, o);
  FanoConfig cfg;
  cfg.junction = 0;
  cfg.window_time = 40.0 / e.total_rate();
  cfg.windows = windows;
  const FanoEstimate est = measure_fano(e, cfg);
  std::printf("cotunneling (deep blockade): F = %.3f (Poisson: 1.0)\n",
              est.fano);
  return 0;
}
