// ISCAS-scale perf-gate cases: the domain-decomposed PartitionedEngine
// (core/partition.h) against the solo engine on identical multi-block
// random-logic fabrics (~1k and ~4k junctions). Compiled into perf_gate.
#pragma once

#include <vector>

#include "gate_case.h"

namespace semsim::bench {

/// Appends four cases to `cases` and prints a "#" report line per case:
///   iscas_blocks_1024        / iscas_blocks_1024_part2
///   iscas_blocks_4096        / iscas_blocks_4096_part8
/// The 4096-junction pair carries an in-run acceptance require(): the
/// 8-cluster partitioned run must reach at least 3x the solo events/sec,
/// so a hollowed-out decomposition fails even a --out (baseline) run.
void append_iscas_cases(std::vector<GateCase>& cases, bool fast_rates);

}  // namespace semsim::bench
