// The perf gate's per-case record and schema tag, shared between
// perf_gate.cpp (the chain / ensemble / facade cases and the gating logic)
// and iscas_scale.cpp (the ISCAS-scale domain-decomposition cases).
//
// Schema history lives with the tag below; the baseline file is
// BENCH_hotpath.json at the repository root.
#pragma once

#include <string>

namespace semsim::bench {

// v2: adds "rates_mode" ("exact" | "fast") so fast-kernel baselines never
// gate exact runs. v3: warm (4.2 K) adaptive chain cases plus the fused
// ensemble case, and adaptive cases gate ns_per_rate_eval alongside
// events/sec. v4: ISCAS-scale cases (iscas_scale.cpp) timing the
// domain-decomposed PartitionedEngine against the solo engine on the same
// logic fabric, and every case now records "partitions" (0 = solo run).
constexpr const char* kGateSchema = "semsim.bench_hotpath/v4";

struct GateCase {
  std::string name;
  int stages = 0;          ///< chain stages; 0 for facade / ISCAS cases
  bool adaptive = true;
  int partitions = 0;      ///< PartitionedEngine clusters; 0 = solo engine
  double events_per_sec = 0.0;
  double ns_per_rate_eval = 0.0;
  double flagged_fraction = -1.0;  ///< < 0: not applicable (non-adaptive)
};

}  // namespace semsim::bench
