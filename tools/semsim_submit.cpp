// semsim_submit — client for the semsim_serve daemon.
//
//   semsim_submit --socket /tmp/semsim.sock submit input.sem [--seed N]
//                 [--priority N] [--fast-rates] [--non-adaptive]
//                 [--repeats N] [--target-rel-error X] [--max-events N]
//                 [--wait] [--json FILE]
//   semsim_submit --socket PATH status JOB
//   semsim_submit --socket PATH result JOB [--json FILE]
//   semsim_submit --socket PATH cancel JOB
//   semsim_submit --socket PATH ping | stats | shutdown
//   semsim_submit --tcp PORT ...
//
// submit reads the input FILE and ships its TEXT to the daemon (the daemon
// parses it with the same strict parser the CLI uses). With --wait, polls
// status until the job is terminal and then fetches the result; the fetched
// document is the daemon's stored canonical RunResult, byte-identical to
// `semsim input.sem --canonical-json`. Responses print to stdout verbatim
// (one JSON line); --json additionally writes the result document to FILE.
//
// Exit codes: 0 ok; 1 transport/protocol error; 2 usage; 3 the daemon
// answered with an error response; 4 --wait saw the job end failed; 5
// --wait saw the job end cancelled.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "base/random.h"
#include "io/json.h"
#include "serve/client.h"

using namespace semsim;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s (--socket PATH | --tcp PORT) VERB [ARGS] [FLAGS]\n"
      "verbs:\n"
      "  submit FILE [--seed N] [--priority N] [--repeats N] [--fast-rates]\n"
      "              [--non-adaptive] [--target-rel-error X] [--max-events N]\n"
      "              [--strict] [--retries N] [--wait] [--json FILE]\n"
      "              [--deadline-ms N] [--client NAME]\n"
      "              [--ensemble N] [--ensemble-seed N]\n"
      "              [--ensemble-{bg,r,c,t}-spread X]\n"
      "              [--ensemble-{bg,r,c,t}-dist gaussian|uniform]\n"
      "              [--ensemble-yield-min X] [--ensemble-yield-max X]\n"
      "              [--partitions N] [--partition-window X]\n"
      "              [--partition-threshold X]\n"
      "  status JOB     job state + streamed partial results\n"
      "  result JOB     completed job's canonical result document [--json F]\n"
      "  cancel JOB     stop a queued/running job (checkpointed if spooled)\n"
      "  ping | stats | shutdown\n"
      "flags:\n"
      "  --deadline-ms N  wall budget from submit (queue wait included); an\n"
      "                   expired job fails with serve.deadline_exceeded\n"
      "  --client NAME    client identity for per-client in-flight caps\n"
      "  --wait           poll until terminal, then fetch the result; polls\n"
      "                   back off exponentially with seeded jitter, and an\n"
      "                   overloaded submit is retried after the daemon's\n"
      "                   retry_after_ms hint\n",
      argv0);
}

bool flag_value(const std::string& a, const char* name, int argc, char** argv,
                int& i, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (a.compare(0, len, name) == 0 && a.size() > len && a[len] == '=') {
    *value = a.substr(len + 1);
    return true;
  }
  if (a == name && i + 1 < argc) {
    *value = argv[++i];
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    std::fprintf(stderr, "%s: not a non-negative integer: %s\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

double parse_f64(const char* flag, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: %s\n", flag, text.c_str());
    std::exit(2);
  }
  return v;
}

/// Ensemble submit flags, generated from the same SEMSIM_ENSEMBLE_FIELD
/// table semsim_cli uses (analysis/run_fields.inc); any of them enables the
/// ensemble section of the envelope.
bool parse_ensemble_flag(const std::string& a, int argc, char** argv, int& i,
                         EnsembleSpec* spec) {
  std::string v;
#define SEMSIM_FIELD_CLI_U64(member, flag)        \
  if (flag_value(a, flag, argc, argv, i, &v)) {   \
    spec->member = parse_u64(flag, v);            \
    spec->enabled = true;                         \
    return true;                                  \
  }
#define SEMSIM_FIELD_CLI_U32(member, flag)                          \
  if (flag_value(a, flag, argc, argv, i, &v)) {                     \
    const std::uint64_t n = parse_u64(flag, v);                     \
    if (n == 0 || n > 0xFFFFFFFFULL) {                              \
      std::fprintf(stderr, "%s: out of range: %s\n", flag, v.c_str()); \
      std::exit(2);                                                 \
    }                                                               \
    spec->member = static_cast<std::uint32_t>(n);                   \
    spec->enabled = true;                                           \
    return true;                                                    \
  }
#define SEMSIM_FIELD_CLI_F64(member, flag)        \
  if (flag_value(a, flag, argc, argv, i, &v)) {   \
    spec->member = parse_f64(flag, v);            \
    spec->enabled = true;                         \
    return true;                                  \
  }
#define SEMSIM_FIELD_CLI_BOOL(member, flag)  // no boolean ensemble fields
#define SEMSIM_FIELD_CLI_DIST(member, flag)                            \
  if (flag_value(a, flag, argc, argv, i, &v)) {                        \
    if (!perturbation_dist_from(v, &spec->member)) {                   \
      std::fprintf(stderr, "%s: unknown distribution '%s' (gaussian|uniform)\n", \
                   flag, v.c_str());                                   \
      std::exit(2);                                                    \
    }                                                                  \
    spec->enabled = true;                                              \
    return true;                                                       \
  }
#define SEMSIM_ENSEMBLE_FIELD(ident, member, KIND, json_name, cli_flag) \
  SEMSIM_FIELD_CLI_##KIND(member, cli_flag)
#include "analysis/run_fields.inc"
#undef SEMSIM_FIELD_CLI_U64
#undef SEMSIM_FIELD_CLI_U32
#undef SEMSIM_FIELD_CLI_F64
#undef SEMSIM_FIELD_CLI_BOOL
#undef SEMSIM_FIELD_CLI_DIST
  return false;
}

/// Partition flags (SEMSIM_PARTITION_FIELD table); any of them enables the
/// envelope's optional "partition" section.
bool parse_partition_flag(const std::string& a, int argc, char** argv, int& i,
                          PartitionSpec* spec) {
  std::string v;
#define SEMSIM_FIELD_CLI_U32(member, flag)                          \
  if (flag_value(a, flag, argc, argv, i, &v)) {                     \
    const std::uint64_t n = parse_u64(flag, v);                     \
    if (n == 0 || n > 0xFFFFFFFFULL) {                              \
      std::fprintf(stderr, "%s: out of range: %s\n", flag, v.c_str()); \
      std::exit(2);                                                 \
    }                                                               \
    spec->member = static_cast<std::uint32_t>(n);                   \
    spec->enabled = true;                                           \
    return true;                                                    \
  }
#define SEMSIM_FIELD_CLI_F64(member, flag)        \
  if (flag_value(a, flag, argc, argv, i, &v)) {   \
    spec->member = parse_f64(flag, v);            \
    spec->enabled = true;                         \
    return true;                                  \
  }
#define SEMSIM_PARTITION_FIELD(ident, member, KIND, json_name, cli_flag) \
  SEMSIM_FIELD_CLI_##KIND(member, cli_flag)
#include "analysis/run_fields.inc"
#undef SEMSIM_FIELD_CLI_U32
#undef SEMSIM_FIELD_CLI_F64
  return false;
}

/// True when the response line is an ok "semsim.response/v1" object (the
/// result verb's verbatim document also counts as success).
bool response_ok(const std::string& line) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    const JsonValue* ok = doc.find("ok");
    return ok == nullptr || ok->as_bool();
  } catch (const Error&) {
    return false;
  }
}

/// True when the response is an admission-control reject
/// (error.name == "serve.overloaded"); extracts the daemon's
/// retry_after_ms hint when present.
bool overload_reject(const std::string& line, std::uint64_t* retry_after_ms) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    const JsonValue* ok = doc.find("ok");
    if (ok == nullptr || ok->as_bool()) return false;
    const JsonValue* err = doc.find("error");
    if (err == nullptr) return false;
    const JsonValue* name = err->find("name");
    if (name == nullptr || name->as_string() != "serve.overloaded") {
      return false;
    }
    if (const JsonValue* hint = err->find("retry_after_ms")) {
      *retry_after_ms = static_cast<std::uint64_t>(hint->as_number());
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// Deterministic jitter: maps `base` into [base/2, base], stepping the
/// SplitMix64 state each call. Seeded from the envelope seed, so a given
/// invocation always sleeps the same schedule, while clients with
/// different seeds desynchronize instead of retrying in lockstep.
std::chrono::milliseconds jittered(std::chrono::milliseconds base,
                                   std::uint64_t* state) {
  *state = splitmix64_mix(*state);
  const std::uint64_t half = static_cast<std::uint64_t>(base.count()) / 2;
  return std::chrono::milliseconds(
      static_cast<long long>(half + *state % (half + 1)));
}

int write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "semsim_submit: cannot write %s\n", path.c_str());
    return 1;
  }
  f << text << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::uint16_t tcp_port = 0;
  bool have_endpoint = false;
  std::string verb;
  std::string verb_arg;  // input file (submit) or job id
  std::string json_path;
  bool wait = false;
  RequestEnvelope env;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--socket", argc, argv, i, &v)) {
      unix_path = v;
      have_endpoint = true;
    } else if (flag_value(a, "--tcp", argc, argv, i, &v)) {
      const std::uint64_t port = parse_u64("--tcp", v);
      if (port > 65535) {
        std::fprintf(stderr, "--tcp: port out of range: %s\n", v.c_str());
        return 2;
      }
      tcp_port = static_cast<std::uint16_t>(port);
      have_endpoint = true;
    } else if (flag_value(a, "--seed", argc, argv, i, &v)) {
      env.seed = parse_u64("--seed", v);
    } else if (flag_value(a, "--priority", argc, argv, i, &v)) {
      env.priority = std::atoi(v.c_str());
    } else if (flag_value(a, "--repeats", argc, argv, i, &v)) {
      env.repeats = static_cast<std::uint32_t>(parse_u64("--repeats", v));
    } else if (flag_value(a, "--target-rel-error", argc, argv, i, &v)) {
      env.stop.target_rel_error = std::atof(v.c_str());
    } else if (flag_value(a, "--max-events", argc, argv, i, &v)) {
      env.stop.max_events = parse_u64("--max-events", v);
    } else if (flag_value(a, "--retries", argc, argv, i, &v)) {
      env.retry.max_attempts =
          static_cast<std::uint32_t>(parse_u64("--retries", v));
    } else if (a == "--strict") {
      env.retry.strict = true;
    } else if (a == "--fast-rates") {
      env.fast_rates = true;
    } else if (a == "--non-adaptive") {
      env.adaptive = false;
    } else if (a == "--wait") {
      wait = true;
    } else if (flag_value(a, "--deadline-ms", argc, argv, i, &v)) {
      env.deadline_ms = parse_u64("--deadline-ms", v);
    } else if (flag_value(a, "--client", argc, argv, i, &v)) {
      env.client = v;
    } else if (parse_ensemble_flag(a, argc, argv, i, &env.ensemble)) {
      // handled (any ensemble flag enables the envelope's ensemble section)
    } else if (parse_partition_flag(a, argc, argv, i, &env.partition)) {
      // handled (any partition flag enables the envelope's partition section)
    } else if (flag_value(a, "--json", argc, argv, i, &v)) {
      json_path = v;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] != '-' && verb.empty()) {
      verb = a;
    } else if (!a.empty() && a[0] != '-' && verb_arg.empty()) {
      verb_arg = a;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_endpoint || verb.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (verb == "ping") {
    env.verb = RequestEnvelope::Verb::kPing;
  } else if (verb == "submit") {
    env.verb = RequestEnvelope::Verb::kSubmit;
  } else if (verb == "status") {
    env.verb = RequestEnvelope::Verb::kStatus;
  } else if (verb == "result") {
    env.verb = RequestEnvelope::Verb::kResult;
  } else if (verb == "cancel") {
    env.verb = RequestEnvelope::Verb::kCancel;
  } else if (verb == "stats") {
    env.verb = RequestEnvelope::Verb::kStats;
  } else if (verb == "shutdown") {
    env.verb = RequestEnvelope::Verb::kShutdown;
  } else {
    std::fprintf(stderr, "unknown verb: %s\n", verb.c_str());
    return 2;
  }

  if (env.verb == RequestEnvelope::Verb::kSubmit) {
    if (verb_arg.empty()) {
      std::fprintf(stderr, "submit: missing input file\n");
      return 2;
    }
    std::ifstream f(verb_arg, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "submit: cannot read %s\n", verb_arg.c_str());
      return 2;
    }
    std::ostringstream text;
    text << f.rdbuf();
    env.netlist = text.str();
  } else if (env.verb == RequestEnvelope::Verb::kStatus ||
             env.verb == RequestEnvelope::Verb::kResult ||
             env.verb == RequestEnvelope::Verb::kCancel) {
    if (verb_arg.empty()) {
      std::fprintf(stderr, "%s: missing job id\n", verb.c_str());
      return 2;
    }
    env.job_id = parse_u64(verb.c_str(), verb_arg);
  }

  try {
    const ServeClient client = unix_path.empty()
                                   ? ServeClient::tcp(tcp_port)
                                   : ServeClient::unix_socket(unix_path);
    // Jitter stream for every sleep below; keyed by the submit seed so a
    // rerun reproduces the exact schedule.
    std::uint64_t jitter_state = derive_stream_seed(env.seed, 0xB0FFULL);
    std::string line;
    if (env.verb == RequestEnvelope::Verb::kSubmit && wait) {
      // A waiting submit rides out transient overload: honor the daemon's
      // retry_after_ms hint, fall back to capped exponential backoff.
      std::chrono::milliseconds backoff(50);
      constexpr std::chrono::milliseconds kBackoffCap(2000);
      constexpr int kMaxAttempts = 8;
      for (int attempt = 1;; ++attempt) {
        line = client.call(env);
        std::uint64_t retry_after_ms = 0;
        if (!overload_reject(line, &retry_after_ms) ||
            attempt == kMaxAttempts) {
          break;
        }
        const std::chrono::milliseconds delay =
            retry_after_ms > 0 ? std::chrono::milliseconds(retry_after_ms)
                               : jittered(backoff, &jitter_state);
        std::fprintf(stderr, "# overloaded, retrying in %lld ms (attempt %d)\n",
                     static_cast<long long>(delay.count()), attempt);
        std::this_thread::sleep_for(delay);
        backoff = std::min(backoff * 2, kBackoffCap);
      }
    } else {
      line = client.call(env);
    }
    std::printf("%s\n", line.c_str());
    if (!response_ok(line)) return 3;

    if (env.verb == RequestEnvelope::Verb::kSubmit && wait) {
      const JsonValue doc = JsonValue::parse(line);
      const std::uint64_t job =
          static_cast<std::uint64_t>(doc.at("job").as_number());
      RequestEnvelope poll;
      poll.verb = RequestEnvelope::Verb::kStatus;
      poll.job_id = job;
      std::string state;
      // Exponential backoff with seeded jitter: a short job is picked up
      // within a few quick polls, a long ensemble run settles to about one
      // status call per second, and concurrent waiters spread out instead
      // of polling in lockstep.
      std::chrono::milliseconds backoff(25);
      constexpr std::chrono::milliseconds kBackoffCap(1000);
      std::uint64_t replicas_seen = 0;
      for (;;) {
        const std::string status_line = client.call(poll);
        const JsonValue status = JsonValue::parse(status_line);
        state = status.at("state").as_string();
        // Ensemble jobs stream per-replica progress (JobProgressSink on the
        // daemon side); narrate it so a long wait is not silent.
        if (const JsonValue* total = status.find("replicas_total")) {
          const JsonValue* done = status.find("replicas_done");
          const std::uint64_t n_done =
              done == nullptr ? 0
                              : static_cast<std::uint64_t>(done->as_number());
          if (n_done != replicas_seen) {
            replicas_seen = n_done;
            std::fprintf(stderr, "# replicas %llu/%llu\n",
                         static_cast<unsigned long long>(n_done),
                         static_cast<unsigned long long>(
                             static_cast<std::uint64_t>(total->as_number())));
          }
        }
        if (state != "queued" && state != "running") break;
        std::this_thread::sleep_for(jittered(backoff, &jitter_state));
        backoff = std::min(backoff * 2, kBackoffCap);
      }
      if (state == "failed") return 4;
      if (state == "cancelled") return 5;
      RequestEnvelope fetch;
      fetch.verb = RequestEnvelope::Verb::kResult;
      fetch.job_id = job;
      line = client.call(fetch);
      std::printf("%s\n", line.c_str());
      if (!response_ok(line)) return 3;
    }
    if (!json_path.empty() &&
        (env.verb == RequestEnvelope::Verb::kResult ||
         (env.verb == RequestEnvelope::Verb::kSubmit && wait))) {
      const int rc = write_file(json_path, line);
      if (rc != 0) return rc;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "semsim_submit: %s\n", e.what());
    return 1;
  }
  return 0;
}
