// semsim_chaos — deterministic crash/recovery harness for semsim_serve.
//
//   semsim_chaos --daemon PATH --workdir DIR [--seed N] [--kill-cycles N]
//                [--trunc-cycles N] [--input FILE] [--sleep-ms N]
//
// Proves the durability contract of the serve journal end to end, from
// outside the process:
//
//   1. KILL PHASE — start the daemon, submit one slowed sweep job (a
//      kSleep fault plan stretches the run without touching its results:
//      fault plans are not fingerprinted), then SIGKILL the daemon at a
//      seeded random moment, restart it, and assert the job is still
//      known. After N kill/restart cycles the job must converge to a
//      document byte-identical to an in-process clean run, with exactly
//      one completion — no job lost, none double-completed.
//
//   2. TRUNCATION PHASE — with the daemon down, chop a seeded number of
//      bytes off the journal tail (simulating a torn append), restart,
//      and assert the daemon recovers: replay truncates to the last valid
//      record, re-runs the job if its done record was lost, and converges
//      to the same canonical bytes again.
//
// Everything is keyed on --seed (SplitMix64 chain), so a failing cycle
// reproduces exactly. Exit 0 = all cycles held; exit 1 = a property was
// violated (message on stderr); exit 2 = usage.
//
// The served and golden documents are left in DIR (golden.json,
// served-kill.json, served-trunc-<i>.json) so CI can additionally `cmp`
// them against a `semsim --canonical-json` run of the same input.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/api.h"
#include "base/random.h"
#include "io/json.h"
#include "serve/client.h"

using namespace semsim;

namespace {

// Same shape as the test suite's sweep input: 6 bias points, a couple
// thousand events each — long enough to be mid-flight when the SIGKILL
// lands (with the sleep fault), short enough for many cycles per CI run.
constexpr char kDefaultInput[] = R"(
num ext 3
num nodes 4
junc 1 1 4 1meg 1a
junc 2 4 2 1meg 1a
cap 3 4 3a
vdc 3 0.0
symm 2
temp 5
record 1 2
jumps 2000
sweep 1 0.01 0.002
)";

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "semsim_chaos: FAIL: %s\n", message.c_str());
  std::exit(1);
}

void note(const std::string& message) {
  std::printf("semsim_chaos: %s\n", message.c_str());
  std::fflush(stdout);
}

bool flag_value(const std::string& a, const char* name, int argc, char** argv,
                int& i, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (a.compare(0, len, name) == 0 && a.size() > len && a[len] == '=') {
    *value = a.substr(len + 1);
    return true;
  }
  if (a == name && i + 1 < argc) {
    *value = argv[++i];
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    std::fprintf(stderr, "%s: not a non-negative integer: %s\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

/// Next draw from the deterministic chaos stream: uniform in [lo, hi].
std::uint64_t draw(std::uint64_t* state, std::uint64_t lo, std::uint64_t hi) {
  *state = splitmix64_mix(*state);
  return lo + *state % (hi - lo + 1);
}

pid_t spawn_daemon(const std::string& daemon, const std::string& sock,
                   const std::string& spool, const std::string& log) {
  const pid_t pid = ::fork();
  if (pid < 0) fail("fork: " + std::string(std::strerror(errno)));
  if (pid == 0) {
    // Child: daemon chatter goes to the log, appended across restarts.
    if (std::freopen(log.c_str(), "a", stdout) == nullptr) _exit(126);
    ::dup2(::fileno(stdout), 2);
    ::execl(daemon.c_str(), daemon.c_str(), "--socket", sock.c_str(),
            "--spool", spool.c_str(), "--threads", "2",
            static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

/// Polls ping until the daemon answers (it may still be replaying a long
/// journal when the socket appears, so keep the budget generous).
void wait_ready(const std::string& sock, pid_t pid) {
  RequestEnvelope ping;
  ping.verb = RequestEnvelope::Verb::kPing;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      fail("daemon exited during startup (status " + std::to_string(status) +
           "); see daemon.log");
    }
    try {
      ServeClient::unix_socket(sock).call(ping);
      return;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  fail("daemon did not answer ping within 30s");
}

void kill_hard(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

/// Graceful stop through the wire protocol, so the daemon's own shutdown
/// path (journal converged, running job checkpointed) is what ends it.
void stop_daemon(const std::string& sock, pid_t pid) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kShutdown;
  try {
    ServeClient::unix_socket(sock).call(env);
  } catch (const Error&) {
    ::kill(pid, SIGTERM);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
}

std::string wait_done(const std::string& sock, std::uint64_t job) {
  RequestEnvelope poll;
  poll.verb = RequestEnvelope::Verb::kStatus;
  poll.job_id = job;
  const ServeClient client = ServeClient::unix_socket(sock);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  for (;;) {
    if (std::chrono::steady_clock::now() > deadline) {
      fail("job " + std::to_string(job) + " not terminal within 3 minutes");
    }
    const JsonValue status = JsonValue::parse(client.call(poll));
    const std::string state = status.at("state").as_string();
    if (state == "done") break;
    if (state == "failed" || state == "cancelled") {
      const JsonValue* err = status.find("error");
      fail("job " + std::to_string(job) + " ended " + state + ": " +
           (err ? err->as_string() : ""));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  RequestEnvelope fetch;
  fetch.verb = RequestEnvelope::Verb::kResult;
  fetch.job_id = job;
  return client.call(fetch);
}

/// Asserts the accounting invariant after convergence: the one submitted
/// job completed exactly once — never lost, never double-counted.
void check_stats(const std::string& sock) {
  RequestEnvelope env;
  env.verb = RequestEnvelope::Verb::kStats;
  const JsonValue doc =
      JsonValue::parse(ServeClient::unix_socket(sock).call(env));
  const JsonValue& sched = doc.at("scheduler");
  const auto field = [&](const char* name) {
    return static_cast<std::uint64_t>(sched.at(name).as_number());
  };
  if (field("submitted") != 1) {
    fail("expected exactly 1 submitted job, stats say " +
         std::to_string(field("submitted")));
  }
  if (field("completed") != 1) {
    fail("job completed " + std::to_string(field("completed")) +
         " times, expected exactly 1 (lost or double-completed)");
  }
  if (field("failed") != 0 || field("cancelled") != 0) {
    fail("unexpected failed/cancelled counts after convergence");
  }
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  f << text << '\n';
  if (!f) fail("cannot write " + path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string daemon;
  std::string workdir;
  std::string input_path;
  std::uint64_t seed = 1;
  std::uint64_t kill_cycles = 5;
  std::uint64_t trunc_cycles = 5;
  std::uint64_t sleep_ms = 150;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--daemon", argc, argv, i, &v)) {
      daemon = v;
    } else if (flag_value(a, "--workdir", argc, argv, i, &v)) {
      workdir = v;
    } else if (flag_value(a, "--input", argc, argv, i, &v)) {
      input_path = v;
    } else if (flag_value(a, "--seed", argc, argv, i, &v)) {
      seed = parse_u64("--seed", v);
    } else if (flag_value(a, "--kill-cycles", argc, argv, i, &v)) {
      kill_cycles = parse_u64("--kill-cycles", v);
    } else if (flag_value(a, "--trunc-cycles", argc, argv, i, &v)) {
      trunc_cycles = parse_u64("--trunc-cycles", v);
    } else if (flag_value(a, "--sleep-ms", argc, argv, i, &v)) {
      sleep_ms = parse_u64("--sleep-ms", v);
    } else {
      std::fprintf(stderr,
                   "usage: %s --daemon PATH --workdir DIR [--seed N]\n"
                   "       [--kill-cycles N] [--trunc-cycles N]\n"
                   "       [--input FILE] [--sleep-ms N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (daemon.empty() || workdir.empty()) {
    std::fprintf(stderr, "semsim_chaos: --daemon and --workdir required\n");
    return 2;
  }

  std::string netlist = kDefaultInput;
  if (!input_path.empty()) {
    std::ifstream f(input_path, std::ios::binary);
    if (!f) fail("cannot read " + input_path);
    std::ostringstream text;
    text << f.rdbuf();
    netlist = text.str();
  }

  std::filesystem::remove_all(workdir);
  std::filesystem::create_directories(workdir);
  const std::string sock = workdir + "/chaos.sock";
  const std::string spool = workdir + "/spool";
  const std::string journal = spool + "/journal.wal";
  const std::string log = workdir + "/daemon.log";
  std::uint64_t chaos = splitmix64_mix(seed + 0xC4A05ULL);

  // Golden: the same run, in process, no daemon involved. The sleep fault
  // is absent here — it is not fingerprinted and never affects results, so
  // the served document must match these bytes exactly.
  note("computing golden document in-process");
  std::string golden;
  try {
    RunRequest req;
    req.input = parse_simulation_input(netlist);
    req.seed = seed;
    golden = run(req).to_json(/*canonical=*/true);
  } catch (const Error& e) {
    fail(std::string("golden run failed: ") + e.what());
  }
  write_file(workdir + "/golden.json", golden);

  // ---- phase 1: seeded SIGKILL mid-population -------------------------
  std::uint64_t job = 0;
  for (std::uint64_t cycle = 0; cycle < kill_cycles; ++cycle) {
    const pid_t pid = spawn_daemon(daemon, sock, spool, log);
    wait_ready(sock, pid);
    if (cycle == 0) {
      RequestEnvelope env;
      env.verb = RequestEnvelope::Verb::kSubmit;
      env.netlist = netlist;
      env.seed = seed;
      FaultSpec slow;  // stretch every unit so kills land mid-run
      slow.kind = FaultKind::kSleep;
      slow.at_event = 50;
      slow.millis = static_cast<std::uint32_t>(sleep_ms);
      env.fault.faults.push_back(slow);
      const JsonValue resp =
          JsonValue::parse(ServeClient::unix_socket(sock).call(env));
      if (!resp.at("ok").as_bool()) fail("submit rejected");
      job = static_cast<std::uint64_t>(resp.at("job").as_number());
      note("submitted job " + std::to_string(job));
    } else {
      // The previous SIGKILL must not have lost the job.
      RequestEnvelope q;
      q.verb = RequestEnvelope::Verb::kStatus;
      q.job_id = job;
      const JsonValue resp =
          JsonValue::parse(ServeClient::unix_socket(sock).call(q));
      if (!resp.at("ok").as_bool()) {
        fail("job " + std::to_string(job) + " lost after kill cycle " +
             std::to_string(cycle));
      }
      note("cycle " + std::to_string(cycle) + ": job survived as '" +
           resp.at("state").as_string() + "'");
    }
    const std::uint64_t grace = draw(&chaos, 30, 400);
    std::this_thread::sleep_for(std::chrono::milliseconds(grace));
    note("cycle " + std::to_string(cycle) + ": SIGKILL after " +
         std::to_string(grace) + "ms");
    kill_hard(pid);
    if (!std::filesystem::exists(journal)) {
      fail("journal file missing after kill");
    }
  }

  // Final restart: let the job converge, then compare bytes.
  {
    const pid_t pid = spawn_daemon(daemon, sock, spool, log);
    wait_ready(sock, pid);
    const std::string served = wait_done(sock, job);
    write_file(workdir + "/served-kill.json", served);
    if (served != golden) {
      fail("kill phase: served document differs from golden "
           "(see served-kill.json vs golden.json)");
    }
    check_stats(sock);
    note("kill phase: converged to golden bytes after " +
         std::to_string(kill_cycles) + " SIGKILLs");
    stop_daemon(sock, pid);
  }

  // ---- phase 2: seeded torn-tail truncation ---------------------------
  for (std::uint64_t cycle = 0; cycle < trunc_cycles; ++cycle) {
    std::error_code ec;
    const std::uint64_t size = std::filesystem::file_size(journal, ec);
    if (ec) fail("cannot stat journal: " + ec.message());
    if (size > 16) {  // never chop the 16-byte header itself
      const std::uint64_t chop = draw(&chaos, 1, std::min<std::uint64_t>(
                                                     64, size - 16));
      if (::truncate(journal.c_str(),
                     static_cast<off_t>(size - chop)) != 0) {
        fail("truncate: " + std::string(std::strerror(errno)));
      }
      note("cycle " + std::to_string(cycle) + ": tore " +
           std::to_string(chop) + " bytes off the journal tail");
    }
    const pid_t pid = spawn_daemon(daemon, sock, spool, log);
    wait_ready(sock, pid);
    // If the tear ate the done record the daemon re-runs the job; either
    // way it must converge to the same canonical bytes.
    const std::string served = wait_done(sock, job);
    write_file(workdir + "/served-trunc-" + std::to_string(cycle) + ".json",
               served);
    if (served != golden) {
      fail("truncation cycle " + std::to_string(cycle) +
           ": served document differs from golden");
    }
    check_stats(sock);
    stop_daemon(sock, pid);
  }
  note("truncation phase: recovered and re-converged " +
       std::to_string(trunc_cycles) + " times");

  note("PASS: no job lost, none double-completed, all documents "
       "byte-identical to golden");
  return 0;
}
