// semsim — command-line front end, the shape the paper describes:
// "Circuit information is passed to SEMSIM via an input file containing all
// the necessary information ... the results are stored in a file."
//
//   semsim <input-file> [--seed N] [--threads N] [--non-adaptive]
//          [--out FILE.tsv] [--master-check]
//
// Runs the Monte-Carlo simulation an input file requests (see
// src/netlist/parser.h for the grammar) and prints/writes the results.
// --master-check additionally solves the steady-state master equation and
// prints its currents next to the Monte-Carlo values (small circuits only).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/driver.h"
#include "io/table_writer.h"
#include "master/master_equation.h"

using namespace semsim;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <input-file> [--seed N] [--threads N] [--non-adaptive]\n"
      "          [--out FILE.tsv] [--master-check]\n"
      "  --threads N   worker threads for sweeps / repeated runs (0 = all\n"
      "                cores); results are identical for every N\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string out_path;
  DriverOptions opt;
  bool master_check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      opt.threads = static_cast<unsigned>(std::strtoul(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--threads: not a number: %s\n", argv[i]);
        return 2;
      }
    } else if (a == "--non-adaptive") {
      opt.adaptive = false;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--master-check") {
      master_check = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] != '-' && input_path.empty()) {
      input_path = a;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (input_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const SimulationInput input = parse_simulation_file(input_path);
    std::printf("# %s: %zu nodes, %zu junctions, T = %g K, %s solver%s\n",
                input_path.c_str(), input.circuit.node_count(),
                input.circuit.junction_count(), input.temperature,
                opt.adaptive ? "adaptive" : "non-adaptive",
                input.cotunneling ? ", cotunneling" : "");

    const DriverResult r = run_simulation(input, opt);

    if (!r.sweep.empty()) {
      TableWriter table({"v_swept_V", "current_A", "stderr_A"});
      table.add_comment("semsim sweep of node " +
                        std::to_string(input.sweep->source));
      for (const IvPoint& p : r.sweep) {
        table.add_row({p.bias, p.current, p.stderr_mean});
      }
      if (!out_path.empty()) {
        table.write_file(out_path);
        std::printf("# wrote %zu sweep points to %s\n", r.sweep.size(),
                    out_path.c_str());
      } else {
        table.write(std::cout);
      }
    } else if (r.current) {
      std::printf("I = %.6e A +- %.1e  (%llu events, %.3e s simulated)\n",
                  r.current->mean, r.current->stderr_mean,
                  static_cast<unsigned long long>(r.events),
                  r.simulated_time);
      if (!out_path.empty()) {
        TableWriter table({"current_A", "stderr_A", "events", "sim_time_s"});
        table.add_row({r.current->mean, r.current->stderr_mean,
                       static_cast<double>(r.events), r.simulated_time});
        table.write_file(out_path);
      }
    }
    std::printf("# work: %llu rate evaluations over %llu events\n",
                static_cast<unsigned long long>(r.stats.rate_evaluations),
                static_cast<unsigned long long>(r.stats.events));
    std::printf(
        "# run: %u thread(s), %llu unit(s), %llu events, %llu rate evals, "
        "%llu flags, %llu refreshes, %.3f s wall\n",
        r.counters.threads, static_cast<unsigned long long>(r.counters.units),
        static_cast<unsigned long long>(r.counters.events),
        static_cast<unsigned long long>(r.counters.rate_evaluations),
        static_cast<unsigned long long>(r.counters.flags_raised),
        static_cast<unsigned long long>(r.counters.full_refreshes),
        r.counters.wall_seconds);

    if (master_check) {
      EngineOptions eo;
      eo.temperature = input.temperature;
      eo.cotunneling = input.cotunneling;
      MasterEquationSolver me(input.circuit, eo);
      std::printf("# master-equation check (%zu states):\n", me.state_count());
      for (const std::size_t j : input.record_junctions) {
        std::printf("#   junction %zu: I_me = %.6e A\n", j + 1,
                    me.junction_current(j));
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "semsim: %s\n", e.what());
    return 1;
  }
  return 0;
}
