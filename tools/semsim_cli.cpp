// semsim — command-line front end, the shape the paper describes:
// "Circuit information is passed to SEMSIM via an input file containing all
// the necessary information ... the results are stored in a file."
//
//   semsim <input-file> [--seed N] [--threads N] [--repeats N]
//          [--non-adaptive] [--out FILE.tsv] [--json FILE.json]
//          [--master-check] [--target-rel-error X] [--max-events N]
//          [--checkpoint FILE] [--resume FILE]
//
// Runs the Monte-Carlo simulation an input file requests (see
// src/netlist/parser.h for the grammar) and prints/writes the results. The
// CLI is a thin wrapper over the RunRequest -> run() -> RunResult facade
// (analysis/api.h); --json writes the versioned RunResult::to_json()
// document. --master-check additionally solves the steady-state master
// equation and prints its currents next to the Monte-Carlo values (small
// circuits only). Every value flag accepts both `--flag VALUE` and
// `--flag=VALUE`.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/api.h"
#include "guard/exit_codes.h"
#include "io/table_writer.h"
#include "master/master_equation.h"

using namespace semsim;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s <input-file> [--seed N] [--threads N] [--repeats N]\n"
      "          [--non-adaptive] [--out FILE.tsv] [--json FILE.json]\n"
      "          [--master-check] [--target-rel-error X] [--max-events N]\n"
      "          [--checkpoint FILE] [--resume FILE] [--salvage-checkpoint]\n"
      "          [--strict] [--retries N] [--audit-interval N] [--no-audit]\n"
      "          [--watchdog-seconds X] [--fast-rates]\n"
      "          [--ensemble N] [--ensemble-seed N]\n"
      "          [--ensemble-bg-spread X] [--ensemble-bg-dist D]\n"
      "          [--ensemble-r-spread X] [--ensemble-r-dist D]\n"
      "          [--ensemble-c-spread X] [--ensemble-c-dist D]\n"
      "          [--ensemble-t-spread X] [--ensemble-t-dist D]\n"
      "          [--ensemble-yield-min X] [--ensemble-yield-max X]\n"
      "          [--partitions N] [--partition-window X]\n"
      "          [--partition-threshold X]\n"
      "  --json FILE.json     write the versioned machine-readable result\n"
      "                       document (schema %s)\n"
      "  --canonical-json FILE  like --json, but omit the execution-\n"
      "                       environment fields (threads, wall time): the\n"
      "                       document is then a pure function of the run\n"
      "                       fingerprint — byte-identical at any thread\n"
      "                       count, and byte-identical to what the service\n"
      "                       daemon (semsim_serve) stores and serves\n"
      "  --threads N          worker threads for sweeps / repeated runs\n"
      "                       (0 = all cores); results are identical for\n"
      "                       every N\n"
      "  --repeats N          override the input file's `jumps` repeat count\n"
      "  --target-rel-error X run each measurement until its binned relative\n"
      "                       error (autocorrelation-aware) drops below X\n"
      "  --max-events N       hard per-measurement event cap for\n"
      "                       --target-rel-error\n"
      "  --checkpoint FILE    record completed work units to FILE (crash\n"
      "                       safe; an existing matching file is resumed)\n"
      "  --resume FILE        like --checkpoint, but FILE must exist\n"
      "  --salvage-checkpoint keep the valid record prefix of a damaged\n"
      "                       checkpoint file instead of rejecting it\n"
      "  --strict             fail fast: the first work-unit error aborts\n"
      "                       the run (default: retry recoverable errors,\n"
      "                       then degrade the unit and continue)\n"
      "  --retries N          attempts per work unit incl. the first\n"
      "                       (default 3; 1 disables retry)\n"
      "  --audit-interval N   events between runtime invariant audits\n"
      "                       (default auto; see --no-audit)\n"
      "  --no-audit           disable the runtime invariant auditor\n"
      "  --watchdog-seconds X abort a work unit after X wall-clock seconds\n"
      "  --fast-rates         polynomial thermal rate kernel (~1e-12 relative\n"
      "                       of exact); faster at T > 0, but trajectories\n"
      "                       are not bitwise comparable with exact runs\n"
      "  --ensemble N         run N device replicas with perturbed parameters\n"
      "                       (statistical variability study); any --ensemble-*\n"
      "                       flag also enables the ensemble\n"
      "  --ensemble-seed N    dedicated ensemble seed (0 = derive from --seed)\n"
      "  --ensemble-bg-spread X   background-charge offset spread [e]\n"
      "  --ensemble-r-spread  X   relative junction-R spread\n"
      "  --ensemble-c-spread  X   relative junction/capacitor-C spread\n"
      "  --ensemble-t-spread  X   relative temperature spread\n"
      "  --ensemble-*-dist D  draw distribution: gaussian (default) | uniform\n"
      "  --ensemble-yield-min/max X   |I| window a replica must land in to\n"
      "                       count toward the yield fraction\n"
      "  --partitions N       domain-decompose the single-run measurement\n"
      "                       into up to N weakly-coupled clusters advanced\n"
      "                       under conservative time windows; any\n"
      "                       --partition-* flag also enables this. The\n"
      "                       planner never cuts a strongly-coupled\n"
      "                       component, so the effective count may be lower\n"
      "  --partition-window X synchronization window [s] (0 = auto from the\n"
      "                       initial total rate)\n"
      "  --partition-threshold X  normalized kappa coupling above which two\n"
      "                       islands must share a cluster (default 0.025)\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 parse/circuit, 4 numeric or\n"
      "invariant violation, 5 I/O or checkpoint mismatch, 6 watchdog\n"
      "timeout, 8 completed degraded (some work units failed)\n",
      argv0, RunResult::kJsonSchema);
}

/// Matches `--name VALUE` (consuming the next argv) or `--name=VALUE`.
bool flag_value(const std::string& a, const char* name, int argc, char** argv,
                int& i, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (a.compare(0, len, name) == 0 && a.size() > len && a[len] == '=') {
    *value = a.substr(len + 1);
    return true;
  }
  if (a == name && i + 1 < argc) {
    *value = argv[++i];
    return true;
  }
  return false;
}

/// Strict decimal parse; anything but a plain non-negative integer is fatal.
std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    std::fprintf(stderr, "%s: not a non-negative integer: %s\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

double parse_f64(const char* flag, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: %s\n", flag, text.c_str());
    std::exit(2);
  }
  return v;
}

/// Ensemble flags, generated from the SEMSIM_ENSEMBLE_FIELD table
/// (analysis/run_fields.inc). Passing any of them enables the ensemble.
/// Returns true when `a` was one of them (and consumed its value).
bool parse_ensemble_flag(const std::string& a, int argc, char** argv, int& i,
                         EnsembleSpec* spec) {
  std::string v;
#define SEMSIM_FIELD_CLI_U64(member, flag)        \
  if (flag_value(a, flag, argc, argv, i, &v)) {   \
    spec->member = parse_u64(flag, v);            \
    spec->enabled = true;                         \
    return true;                                  \
  }
#define SEMSIM_FIELD_CLI_U32(member, flag)                          \
  if (flag_value(a, flag, argc, argv, i, &v)) {                     \
    const std::uint64_t n = parse_u64(flag, v);                     \
    if (n == 0 || n > 0xFFFFFFFFULL) {                              \
      std::fprintf(stderr, "%s: out of range: %s\n", flag, v.c_str()); \
      std::exit(2);                                                 \
    }                                                               \
    spec->member = static_cast<std::uint32_t>(n);                   \
    spec->enabled = true;                                           \
    return true;                                                    \
  }
#define SEMSIM_FIELD_CLI_F64(member, flag)        \
  if (flag_value(a, flag, argc, argv, i, &v)) {   \
    spec->member = parse_f64(flag, v);            \
    spec->enabled = true;                         \
    return true;                                  \
  }
#define SEMSIM_FIELD_CLI_BOOL(member, flag)  // no boolean ensemble fields
#define SEMSIM_FIELD_CLI_DIST(member, flag)                            \
  if (flag_value(a, flag, argc, argv, i, &v)) {                        \
    if (!perturbation_dist_from(v, &spec->member)) {                   \
      std::fprintf(stderr, "%s: unknown distribution '%s' (gaussian|uniform)\n", \
                   flag, v.c_str());                                   \
      std::exit(2);                                                    \
    }                                                                  \
    spec->enabled = true;                                              \
    return true;                                                       \
  }
#define SEMSIM_ENSEMBLE_FIELD(ident, member, KIND, json_name, cli_flag) \
  SEMSIM_FIELD_CLI_##KIND(member, cli_flag)
#include "analysis/run_fields.inc"
#undef SEMSIM_FIELD_CLI_U64
#undef SEMSIM_FIELD_CLI_U32
#undef SEMSIM_FIELD_CLI_F64
#undef SEMSIM_FIELD_CLI_BOOL
#undef SEMSIM_FIELD_CLI_DIST
  return false;
}

/// Partition flags, generated from the SEMSIM_PARTITION_FIELD table.
/// Passing any of them enables partitioned execution.
bool parse_partition_flag(const std::string& a, int argc, char** argv, int& i,
                          PartitionSpec* spec) {
  std::string v;
#define SEMSIM_FIELD_CLI_U32(member, flag)                          \
  if (flag_value(a, flag, argc, argv, i, &v)) {                     \
    const std::uint64_t n = parse_u64(flag, v);                     \
    if (n == 0 || n > 0xFFFFFFFFULL) {                              \
      std::fprintf(stderr, "%s: out of range: %s\n", flag, v.c_str()); \
      std::exit(2);                                                 \
    }                                                               \
    spec->member = static_cast<std::uint32_t>(n);                   \
    spec->enabled = true;                                           \
    return true;                                                    \
  }
#define SEMSIM_FIELD_CLI_F64(member, flag)        \
  if (flag_value(a, flag, argc, argv, i, &v)) {   \
    spec->member = parse_f64(flag, v);            \
    spec->enabled = true;                         \
    return true;                                  \
  }
#define SEMSIM_PARTITION_FIELD(ident, member, KIND, json_name, cli_flag) \
  SEMSIM_FIELD_CLI_##KIND(member, cli_flag)
#include "analysis/run_fields.inc"
#undef SEMSIM_FIELD_CLI_U32
#undef SEMSIM_FIELD_CLI_F64
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string out_path;
  std::string json_path;
  std::string canonical_json_path;
  RunRequest req;
  std::optional<std::uint32_t> repeats_override;
  bool master_check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--seed", argc, argv, i, &v)) {
      req.seed = parse_u64("--seed", v);
    } else if (flag_value(a, "--threads", argc, argv, i, &v)) {
      req.threads = static_cast<unsigned>(parse_u64("--threads", v));
    } else if (flag_value(a, "--repeats", argc, argv, i, &v)) {
      const std::uint64_t n = parse_u64("--repeats", v);
      if (n == 0 || n > 0xFFFFFFFFULL) {
        std::fprintf(stderr, "--repeats: out of range: %s\n", v.c_str());
        return kExitUsage;
      }
      repeats_override = static_cast<std::uint32_t>(n);
    } else if (flag_value(a, "--target-rel-error", argc, argv, i, &v)) {
      req.stop.target_rel_error = parse_f64("--target-rel-error", v);
      if (!(req.stop.target_rel_error > 0.0)) {
        std::fprintf(stderr, "--target-rel-error: must be > 0: %s\n",
                     v.c_str());
        return kExitUsage;
      }
    } else if (flag_value(a, "--max-events", argc, argv, i, &v)) {
      req.stop.max_events = parse_u64("--max-events", v);
    } else if (flag_value(a, "--checkpoint", argc, argv, i, &v)) {
      req.checkpoint_path = v;
    } else if (flag_value(a, "--resume", argc, argv, i, &v)) {
      req.resume_path = v;
    } else if (a == "--salvage-checkpoint") {
      req.salvage_checkpoint = true;
    } else if (a == "--strict") {
      req.retry.strict = true;
    } else if (flag_value(a, "--retries", argc, argv, i, &v)) {
      const std::uint64_t n = parse_u64("--retries", v);
      if (n == 0 || n > 0xFFFFFFFFULL) {
        std::fprintf(stderr, "--retries: out of range: %s\n", v.c_str());
        return kExitUsage;
      }
      req.retry.max_attempts = static_cast<std::uint32_t>(n);
    } else if (flag_value(a, "--audit-interval", argc, argv, i, &v)) {
      req.audit.interval = parse_u64("--audit-interval", v);
    } else if (a == "--no-audit") {
      req.audit.enabled = false;
    } else if (flag_value(a, "--watchdog-seconds", argc, argv, i, &v)) {
      req.audit.watchdog_seconds = parse_f64("--watchdog-seconds", v);
      if (!(req.audit.watchdog_seconds > 0.0)) {
        std::fprintf(stderr, "--watchdog-seconds: must be > 0: %s\n",
                     v.c_str());
        return kExitUsage;
      }
    } else if (a == "--non-adaptive") {
      req.adaptive = false;
    } else if (a == "--fast-rates") {
      req.fast_rates = true;
    } else if (flag_value(a, "--out", argc, argv, i, &v)) {
      out_path = v;
    } else if (flag_value(a, "--canonical-json", argc, argv, i, &v)) {
      canonical_json_path = v;
    } else if (flag_value(a, "--json", argc, argv, i, &v)) {
      json_path = v;
    } else if (a == "--master-check") {
      master_check = true;
    } else if (parse_ensemble_flag(a, argc, argv, i, &req.ensemble)) {
      // handled (any ensemble flag enables the ensemble)
    } else if (parse_partition_flag(a, argc, argv, i, &req.partition)) {
      // handled (any partition flag enables partitioned execution)
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] != '-' && input_path.empty()) {
      input_path = a;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      usage(argv[0]);
      return kExitUsage;
    }
  }
  if (input_path.empty()) {
    usage(argv[0]);
    return kExitUsage;
  }

  try {
    req.input = parse_simulation_file(input_path);
    if (repeats_override) req.input.repeats = *repeats_override;
    const SimulationInput& input = req.input;
    std::printf("# %s: %zu nodes, %zu junctions, T = %g K, %s solver%s\n",
                input_path.c_str(), input.circuit.node_count(),
                input.circuit.junction_count(), input.temperature,
                req.adaptive ? "adaptive" : "non-adaptive",
                input.cotunneling ? ", cotunneling" : "");

    const RunResult res = run(req);
    const DriverResult& r = res.driver;
    std::printf("# fingerprint: %s\n", fingerprint_hex(res.fingerprint).c_str());

    if (!r.sweep.empty()) {
      TableWriter table({"v_swept_V", "current_A", "stderr_A", "rel_err",
                         "tau_int", "events", "status"});
      table.add_comment("semsim sweep of node " +
                        std::to_string(input.sweep->source));
      for (const IvPoint& p : r.sweep) {
        table.add_row({p.bias, p.current, p.stderr_mean, p.rel_error,
                       p.tau_int, static_cast<double>(p.events),
                       point_status_label(p)});
      }
      if (!out_path.empty()) {
        table.write_file(out_path);
        std::printf("# wrote %zu sweep points to %s\n", r.sweep.size(),
                    out_path.c_str());
      } else {
        table.write(std::cout);
      }
    } else if (r.current) {
      std::printf("I = %.6e A +- %.1e  (%llu events, %.3e s simulated)\n",
                  r.current->mean, r.current->stderr_mean,
                  static_cast<unsigned long long>(r.events),
                  r.simulated_time);
      if (r.converged) {
        std::printf(
            "# convergence: rel_err = %.3e (target %.3e, %s), tau_int = "
            "%.2f, %llu samples\n",
            r.converged->rel_error, req.stop.target_rel_error,
            r.converged->converged ? "reached" : "event cap hit",
            r.converged->tau_int,
            static_cast<unsigned long long>(r.converged->samples.count()));
      }
      if (!out_path.empty()) {
        TableWriter table({"current_A", "stderr_A", "events", "sim_time_s"});
        table.add_row({r.current->mean, r.current->stderr_mean,
                       static_cast<double>(r.events), r.simulated_time});
        table.write_file(out_path);
      }
    }

    if (r.ensemble) {
      const EnsembleResult& ens = *r.ensemble;
      const EnsembleBandStats& band = ens.observable_stats;
      std::printf("# ensemble: %u replicas (seed %llu), %u ok, yield %.3f\n",
                  ens.replicas, static_cast<unsigned long long>(ens.seed),
                  band.n_ok, band.yield);
      std::printf(
          "# band: mean %.6e A, spread %.3e A, min %.6e A, max %.6e A\n",
          band.mean, band.spread, band.min, band.max);
      TableWriter table({"replica", "observable_A", "stderr_A", "events",
                         "sim_time_s", "attempts", "status"});
      table.add_comment("semsim ensemble replica rows");
      for (const ReplicaRow& row : ens.rows) {
        table.add_row({static_cast<double>(row.replica), row.observable,
                       row.current.stderr_mean,
                       static_cast<double>(row.events), row.sim_time,
                       static_cast<double>(row.attempts),
                       replica_status_label(row)});
      }
      table.write(std::cout);
    }
    std::printf("# work: %llu rate evaluations over %llu events\n",
                static_cast<unsigned long long>(r.stats.rate_evaluations),
                static_cast<unsigned long long>(r.stats.events));
    std::printf(
        "# run: %u thread(s), %llu unit(s), %llu events, %llu rate evals, "
        "%llu flags, %llu refreshes, %.3f s wall\n",
        r.counters.threads, static_cast<unsigned long long>(r.counters.units),
        static_cast<unsigned long long>(r.counters.events),
        static_cast<unsigned long long>(r.counters.rate_evaluations),
        static_cast<unsigned long long>(r.counters.flags_raised),
        static_cast<unsigned long long>(r.counters.full_refreshes),
        r.counters.wall_seconds);

    if (!json_path.empty()) {
      std::ofstream f(json_path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "semsim: cannot write %s\n", json_path.c_str());
        return 1;
      }
      f << res.to_json() << '\n';
      std::printf("# wrote %s result to %s\n", RunResult::kJsonSchema,
                  json_path.c_str());
    }
    if (!canonical_json_path.empty()) {
      std::ofstream f(canonical_json_path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "semsim: cannot write %s\n",
                     canonical_json_path.c_str());
        return 1;
      }
      f << res.to_json(/*canonical=*/true) << '\n';
      std::printf("# wrote canonical %s result to %s\n", RunResult::kJsonSchema,
                  canonical_json_path.c_str());
    }

    if (master_check) {
      MasterEquationSolver me(input.circuit, req.engine_options());
      std::printf("# master-equation check (%zu states):\n", me.state_count());
      for (const std::size_t j : input.record_junctions) {
        std::printf("#   junction %zu: I_me = %.6e A\n", j + 1,
                    me.junction_current(j));
      }
    }

    if (r.degraded()) {
      // Non-strict runs finish even when work units fail; signal the
      // degradation with a distinct exit code and name every failed unit.
      for (const UnitFailure& f : r.failures) {
        std::fprintf(stderr, "semsim: degraded: %s (code %s, %u attempts)\n",
                     f.message.c_str(), error_code_name(f.code), f.attempts);
      }
      return kExitDegraded;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "semsim: %s\n", e.what());
    return exit_code_for(e);
  }
  return kExitOk;
}
