// semsim_serve — simulation-as-a-service daemon.
//
//   semsim_serve --socket /tmp/semsim.sock [--threads N]
//                [--cache-mb N] [--spool DIR] [--max-request-mb N]
//   semsim_serve --tcp PORT ...      # loopback only; PORT 0 = ephemeral
//
// Accepts newline-delimited JSON requests (schema semsim.request/v1, see
// src/io/envelope.h) and runs submitted jobs through the same
// RunRequest -> run() path as the semsim CLI, sharded across one shared
// thread pool — served results are bitwise identical to local runs
// (tests/test_serve.cpp). Completed canonical documents are cached by run
// fingerprint; identical resubmits are answered instantly. With --spool,
// jobs checkpoint per work unit: cancellation and daemon shutdown leave
// resumable spool files behind.
//
// SIGINT/SIGTERM and the `shutdown` verb stop the daemon gracefully: the
// running job is cancelled at its next work-unit boundary (checkpointing
// what finished), then the process exits 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "guard/exit_codes.h"
#include "serve/server.h"

using namespace semsim;

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage: %s (--socket PATH | --tcp PORT) [--threads N] [--cache-mb N]\n"
      "          [--spool DIR] [--max-request-mb N]\n"
      "  --socket PATH      listen on a Unix-domain socket at PATH\n"
      "  --tcp PORT         listen on 127.0.0.1:PORT (0 = pick a free port,\n"
      "                     printed on startup)\n"
      "  --threads N        worker threads shared by all jobs (default 1,\n"
      "                     0 = all cores); never affects results\n"
      "  --cache-mb N       result-cache budget in MiB (default 64, 0 off)\n"
      "  --spool DIR        checkpoint jobs to DIR/job-<fingerprint>.ckpt;\n"
      "                     cancelled/interrupted jobs resume on resubmit\n"
      "  --max-request-mb N request size cap in MiB (default 4)\n",
      argv0);
}

bool flag_value(const std::string& a, const char* name, int argc, char** argv,
                int& i, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (a.compare(0, len, name) == 0 && a.size() > len && a[len] == '=') {
    *value = a.substr(len + 1);
    return true;
  }
  if (a == name && i + 1 < argc) {
    *value = argv[++i];
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    std::fprintf(stderr, "%s: not a non-negative integer: %s\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig server_cfg;
  SchedulerConfig sched_cfg;
  bool have_endpoint = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--socket", argc, argv, i, &v)) {
      server_cfg.unix_path = v;
      have_endpoint = true;
    } else if (flag_value(a, "--tcp", argc, argv, i, &v)) {
      const std::uint64_t port = parse_u64("--tcp", v);
      if (port > 65535) {
        std::fprintf(stderr, "--tcp: port out of range: %s\n", v.c_str());
        return kExitUsage;
      }
      server_cfg.tcp_port = static_cast<std::uint16_t>(port);
      have_endpoint = true;
    } else if (flag_value(a, "--threads", argc, argv, i, &v)) {
      sched_cfg.threads = static_cast<unsigned>(parse_u64("--threads", v));
    } else if (flag_value(a, "--cache-mb", argc, argv, i, &v)) {
      sched_cfg.cache_bytes = parse_u64("--cache-mb", v) << 20;
    } else if (flag_value(a, "--spool", argc, argv, i, &v)) {
      sched_cfg.spool_dir = v;
    } else if (flag_value(a, "--max-request-mb", argc, argv, i, &v)) {
      const std::uint64_t mb = parse_u64("--max-request-mb", v);
      if (mb == 0) {
        std::fprintf(stderr, "--max-request-mb: must be > 0\n");
        return kExitUsage;
      }
      server_cfg.max_request_bytes = mb << 20;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      usage(argv[0]);
      return kExitUsage;
    }
  }
  if (!have_endpoint) {
    usage(argv[0]);
    return kExitUsage;
  }

  try {
    JobScheduler scheduler(sched_cfg);
    Server server(server_cfg, scheduler);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // A client that hangs up mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    if (!server_cfg.unix_path.empty()) {
      std::printf("semsim_serve: listening on %s (%u threads)\n",
                  server_cfg.unix_path.c_str(), sched_cfg.threads);
    } else {
      std::printf("semsim_serve: listening on 127.0.0.1:%u (%u threads)\n",
                  server.port(), sched_cfg.threads);
    }
    std::fflush(stdout);

    // The accept loop polls with a short timeout, so a signal raised
    // between polls is noticed promptly through this watcher thread.
    std::thread watcher([&server] {
      while (!server.shutdown_requested() && g_signal == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      server.stop();
    });

    server.run();  // returns on signal or `shutdown` verb
    watcher.join();

    // Cancels + checkpoints the running job, marks queued jobs cancelled.
    scheduler.shutdown();
    std::printf("semsim_serve: stopped\n");
  } catch (const Error& e) {
    std::fprintf(stderr, "semsim_serve: %s\n", e.what());
    return exit_code_for(e);
  }
  return kExitOk;
}
