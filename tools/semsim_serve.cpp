// semsim_serve — simulation-as-a-service daemon.
//
//   semsim_serve --socket /tmp/semsim.sock [--threads N]
//                [--cache-mb N] [--spool DIR] [--max-request-mb N]
//   semsim_serve --tcp PORT ...      # loopback only; PORT 0 = ephemeral
//
// Accepts newline-delimited JSON requests (schema semsim.request/v1, see
// src/io/envelope.h) and runs submitted jobs through the same
// RunRequest -> run() path as the semsim CLI, sharded across one shared
// thread pool — served results are bitwise identical to local runs
// (tests/test_serve.cpp). Completed canonical documents are cached by run
// fingerprint; identical resubmits are answered instantly. With --spool,
// jobs checkpoint per work unit: cancellation and daemon shutdown leave
// resumable spool files behind.
//
// SIGINT/SIGTERM and the `shutdown` verb stop the daemon gracefully: the
// running job is cancelled at its next work-unit boundary (checkpointing
// what finished), then the process exits 0. Server::stop() is
// async-signal-safe (self-pipe), so the handler calls it directly — no
// polling watcher thread.
//
// With --journal (default <spool>/journal.wal when --spool is given) every
// job transition is write-ahead logged: a crashed daemon restarted on the
// same journal replays its job table, re-enqueues pending jobs, and
// resumes interrupted ones from their spool checkpoints
// (tools/semsim_chaos.cpp exercises this under repeated SIGKILL).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "guard/exit_codes.h"
#include "serve/server.h"

using namespace semsim;

namespace {

std::atomic<Server*> g_server{nullptr};
void on_signal(int) {
  if (Server* s = g_server.load(std::memory_order_relaxed)) s->stop();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s (--socket PATH | --tcp PORT) [--threads N] [--cache-mb N]\n"
      "          [--spool DIR] [--journal PATH] [--queue-depth N]\n"
      "          [--inflight-per-client N] [--retry-after-ms N]\n"
      "          [--idle-timeout-ms N] [--max-request-mb N]\n"
      "  --socket PATH      listen on a Unix-domain socket at PATH\n"
      "  --tcp PORT         listen on 127.0.0.1:PORT (0 = pick a free port,\n"
      "                     printed on startup)\n"
      "  --threads N        worker threads shared by all jobs (default 1,\n"
      "                     0 = all cores); never affects results\n"
      "  --cache-mb N       result-cache budget in MiB (default 64, 0 off)\n"
      "  --spool DIR        checkpoint jobs to DIR/job-<fingerprint>.ckpt;\n"
      "                     cancelled/interrupted jobs resume on resubmit\n"
      "  --journal PATH     write-ahead job journal; a restarted daemon\n"
      "                     replays it and no acknowledged job is lost\n"
      "                     (default: DIR/journal.wal when --spool given;\n"
      "                     'none' disables)\n"
      "  --queue-depth N    reject submits beyond N queued jobs with the\n"
      "                     coded serve.overloaded (default 256, 0 = off)\n"
      "  --inflight-per-client N  per-client non-terminal job cap\n"
      "                     (default 64, 0 = off)\n"
      "  --retry-after-ms N back-off hint carried by overload rejections\n"
      "                     (default 250)\n"
      "  --idle-timeout-ms N  hang up on silent connections after N ms\n"
      "                     (default 60000, 0 = never)\n"
      "  --max-request-mb N request size cap in MiB (default 4)\n",
      argv0);
}

bool flag_value(const std::string& a, const char* name, int argc, char** argv,
                int& i, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (a.compare(0, len, name) == 0 && a.size() > len && a[len] == '=') {
    *value = a.substr(len + 1);
    return true;
  }
  if (a == name && i + 1 < argc) {
    *value = argv[++i];
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    std::fprintf(stderr, "%s: not a non-negative integer: %s\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig server_cfg;
  SchedulerConfig sched_cfg;
  std::string journal;  ///< "" = derive from --spool; "none" = off
  bool have_endpoint = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--socket", argc, argv, i, &v)) {
      server_cfg.unix_path = v;
      have_endpoint = true;
    } else if (flag_value(a, "--tcp", argc, argv, i, &v)) {
      const std::uint64_t port = parse_u64("--tcp", v);
      if (port > 65535) {
        std::fprintf(stderr, "--tcp: port out of range: %s\n", v.c_str());
        return kExitUsage;
      }
      server_cfg.tcp_port = static_cast<std::uint16_t>(port);
      have_endpoint = true;
    } else if (flag_value(a, "--threads", argc, argv, i, &v)) {
      sched_cfg.threads = static_cast<unsigned>(parse_u64("--threads", v));
    } else if (flag_value(a, "--cache-mb", argc, argv, i, &v)) {
      sched_cfg.cache_bytes = parse_u64("--cache-mb", v) << 20;
    } else if (flag_value(a, "--spool", argc, argv, i, &v)) {
      sched_cfg.spool_dir = v;
    } else if (flag_value(a, "--journal", argc, argv, i, &v)) {
      journal = v;
    } else if (flag_value(a, "--queue-depth", argc, argv, i, &v)) {
      sched_cfg.max_queue_depth =
          static_cast<std::size_t>(parse_u64("--queue-depth", v));
    } else if (flag_value(a, "--inflight-per-client", argc, argv, i, &v)) {
      sched_cfg.max_inflight_per_client =
          static_cast<std::size_t>(parse_u64("--inflight-per-client", v));
    } else if (flag_value(a, "--retry-after-ms", argc, argv, i, &v)) {
      sched_cfg.retry_after_ms = parse_u64("--retry-after-ms", v);
    } else if (flag_value(a, "--idle-timeout-ms", argc, argv, i, &v)) {
      server_cfg.idle_timeout_ms =
          static_cast<int>(parse_u64("--idle-timeout-ms", v));
    } else if (flag_value(a, "--max-request-mb", argc, argv, i, &v)) {
      const std::uint64_t mb = parse_u64("--max-request-mb", v);
      if (mb == 0) {
        std::fprintf(stderr, "--max-request-mb: must be > 0\n");
        return kExitUsage;
      }
      server_cfg.max_request_bytes = mb << 20;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      usage(argv[0]);
      return kExitUsage;
    }
  }
  if (!have_endpoint) {
    usage(argv[0]);
    return kExitUsage;
  }
  // Durability defaults on whenever there is a spool to recover into.
  if (journal == "none") {
    sched_cfg.journal_path.clear();
  } else if (!journal.empty()) {
    sched_cfg.journal_path = journal;
  } else if (!sched_cfg.spool_dir.empty()) {
    sched_cfg.journal_path = sched_cfg.spool_dir + "/journal.wal";
  }

  try {
    JobScheduler scheduler(sched_cfg);
    Server server(server_cfg, scheduler);

    // stop() is async-signal-safe, so the handler calls it directly.
    g_server.store(&server, std::memory_order_relaxed);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // A client that hangs up mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    if (!server_cfg.unix_path.empty()) {
      std::printf("semsim_serve: listening on %s (%u threads)\n",
                  server_cfg.unix_path.c_str(), sched_cfg.threads);
    } else {
      std::printf("semsim_serve: listening on 127.0.0.1:%u (%u threads)\n",
                  server.port(), sched_cfg.threads);
    }
    std::fflush(stdout);

    server.run();  // returns on signal or `shutdown` verb
    g_server.store(nullptr, std::memory_order_relaxed);

    // Cancels + checkpoints the running job, marks queued jobs cancelled.
    scheduler.shutdown();
    std::printf("semsim_serve: stopped\n");
  } catch (const Error& e) {
    std::fprintf(stderr, "semsim_serve: %s\n", e.what());
    return exit_code_for(e);
  }
  return kExitOk;
}
